package temporal

import (
	"reflect"
	"testing"
)

func TestEveryNWindows(t *testing.T) {
	// Example 2.3: months 1..9 in 3-month windows -> quarters
	// W1=[1,4), W2=[4,7), W3=[7,10).
	spec := MustEveryN(3)
	got := spec.Windows(MustInterval(1, 10), nil)
	want := []Window{
		{0, MustInterval(1, 4)},
		{1, MustInterval(4, 7)},
		{2, MustInterval(7, 10)},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Windows = %v, want %v", got, want)
	}
}

func TestEveryNPartialLastWindow(t *testing.T) {
	spec := MustEveryN(4)
	got := spec.Windows(MustInterval(0, 10), nil)
	if len(got) != 3 {
		t.Fatalf("want 3 windows, got %v", got)
	}
	if got[2].Interval != MustInterval(8, 12) {
		t.Errorf("last window = %v, want [8, 12)", got[2].Interval)
	}
}

func TestEveryNInvalid(t *testing.T) {
	if _, err := EveryN(0); err == nil {
		t.Error("EveryN(0): want error")
	}
	if _, err := EveryNChanges(-1); err == nil {
		t.Error("EveryNChanges(-1): want error")
	}
}

func TestEveryNChangesWindows(t *testing.T) {
	spec := MustEveryNChanges(2)
	// Lifetime [1, 9) with change points at 2, 5, 7:
	// states [1,2) [2,5) [5,7) [7,9) -> windows [1,5), [5,9).
	got := spec.Windows(MustInterval(1, 9), []Time{2, 5, 7})
	want := []Window{
		{0, MustInterval(1, 5)},
		{1, MustInterval(5, 9)},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Windows = %v, want %v", got, want)
	}
}

func TestEveryNChangesOddTail(t *testing.T) {
	spec := MustEveryNChanges(2)
	got := spec.Windows(MustInterval(0, 6), []Time{2, 4})
	// States [0,2) [2,4) [4,6) -> windows [0,4), [4,6).
	want := []Window{{0, MustInterval(0, 4)}, {1, MustInterval(4, 6)}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Windows = %v, want %v", got, want)
	}
}

func TestWindowsEmptyLifetime(t *testing.T) {
	if MustEveryN(3).Windows(Empty, nil) != nil {
		t.Error("windows over empty lifetime should be nil")
	}
	if MustEveryNChanges(2).Windows(Empty, nil) != nil {
		t.Error("change windows over empty lifetime should be nil")
	}
}

func TestParseWindowSpec(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
	}{
		{"3 months", "3 units"},
		{"10 min", "10 units"},
		{"2 changes", "2 changes"},
		{" 1 change ", "1 changes"},
	} {
		spec, err := ParseWindowSpec(tc.in)
		if err != nil {
			t.Errorf("ParseWindowSpec(%q): %v", tc.in, err)
			continue
		}
		if spec.String() != tc.want {
			t.Errorf("ParseWindowSpec(%q) = %q, want %q", tc.in, spec, tc.want)
		}
	}
	for _, bad := range []string{"", "months", "x months", "0 months", "1 2 3"} {
		if _, err := ParseWindowSpec(bad); err == nil {
			t.Errorf("ParseWindowSpec(%q): want error", bad)
		}
	}
}

func TestWindowOf(t *testing.T) {
	ws := MustEveryN(3).Windows(MustInterval(1, 10), nil)
	for _, tc := range []struct {
		t       Time
		wantIdx int
		ok      bool
	}{{1, 0, true}, {3, 0, true}, {4, 1, true}, {9, 2, true}, {0, 0, false}, {10, 0, false}} {
		w, ok := WindowOf(ws, tc.t)
		if ok != tc.ok || (ok && w.Index != tc.wantIdx) {
			t.Errorf("WindowOf(%d) = %v, %v; want idx %d, %v", tc.t, w, ok, tc.wantIdx, tc.ok)
		}
	}
}

func TestOverlappingWindows(t *testing.T) {
	ws := MustEveryN(3).Windows(MustInterval(1, 10), nil)
	got := OverlappingWindows(ws, MustInterval(2, 8))
	if len(got) != 3 {
		t.Fatalf("OverlappingWindows([2,8)) = %v, want all 3", got)
	}
	got = OverlappingWindows(ws, MustInterval(4, 7))
	if len(got) != 1 || got[0].Index != 1 {
		t.Errorf("OverlappingWindows([4,7)) = %v, want just W1", got)
	}
	if OverlappingWindows(ws, Empty) != nil {
		t.Error("OverlappingWindows(empty) should be nil")
	}
}

func TestQuantifierThresholds(t *testing.T) {
	for _, tc := range []struct {
		q    Quantifier
		want float64
	}{{All(), 1}, {Most(), 0.5}, {Exists(), 0}, {MustAtLeast(0.7), 0.7}} {
		if got := tc.q.Threshold(); got != tc.want {
			t.Errorf("%v.Threshold() = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestQuantifierSatisfied(t *testing.T) {
	cases := []struct {
		q              Quantifier
		covered, total Time
		want           bool
	}{
		{All(), 3, 3, true},
		{All(), 2, 3, false},
		{Most(), 2, 3, true},
		{Most(), 1, 2, false}, // exactly half is not "most"
		{Exists(), 1, 3, true},
		{Exists(), 0, 3, false},
		{MustAtLeast(0.5), 2, 3, true},
		{MustAtLeast(0.5), 1, 2, false}, // strictly greater than n
		{All(), 0, 0, false},
		{All(), 5, 3, true}, // clamped
	}
	for _, c := range cases {
		if got := c.q.Satisfied(c.covered, c.total); got != c.want {
			t.Errorf("%v.Satisfied(%d, %d) = %v, want %v", c.q, c.covered, c.total, got, c.want)
		}
	}
}

func TestQuantifierRestrictiveness(t *testing.T) {
	if !All().MoreRestrictiveThan(Exists()) {
		t.Error("all > exists")
	}
	if !All().MoreRestrictiveThan(Most()) {
		t.Error("all > most")
	}
	if Exists().MoreRestrictiveThan(Exists()) {
		t.Error("exists is not more restrictive than itself")
	}
	if !MustAtLeast(0.9).MoreRestrictiveThan(Most()) {
		t.Error("at least 0.9 > most")
	}
}

func TestParseQuantifier(t *testing.T) {
	for _, tc := range []struct {
		in, want string
	}{
		{"all", "all"}, {"MOST", "most"}, {"exists", "exists"},
		{"at least 0.25", "at least 0.25"},
	} {
		q, err := ParseQuantifier(tc.in)
		if err != nil {
			t.Errorf("ParseQuantifier(%q): %v", tc.in, err)
			continue
		}
		if q.String() != tc.want {
			t.Errorf("ParseQuantifier(%q) = %q, want %q", tc.in, q, tc.want)
		}
	}
	for _, bad := range []string{"", "some", "at least", "at least x", "at least 1.5"} {
		if _, err := ParseQuantifier(bad); err == nil {
			t.Errorf("ParseQuantifier(%q): want error", bad)
		}
	}
}

// Property: windows from EveryN tile the lifetime without gaps or
// overlaps and cover every lifetime point exactly once.
func TestUnitWindowsTileLifetime(t *testing.T) {
	for n := Time(1); n <= 7; n++ {
		life := MustInterval(3, 29)
		ws := MustEveryN(n).Windows(life, nil)
		for i := 1; i < len(ws); i++ {
			if ws[i-1].Interval.End != ws[i].Interval.Start {
				t.Fatalf("n=%d: windows %v and %v do not meet", n, ws[i-1], ws[i])
			}
			if ws[i].Index != ws[i-1].Index+1 {
				t.Fatalf("n=%d: window indexes not consecutive", n)
			}
		}
		if ws[0].Interval.Start != life.Start {
			t.Fatalf("n=%d: first window %v does not start at lifetime start", n, ws[0])
		}
		if ws[len(ws)-1].Interval.End < life.End {
			t.Fatalf("n=%d: windows do not cover lifetime end", n)
		}
	}
}

func TestZeroQuantifierIsExists(t *testing.T) {
	var q Quantifier
	if q.String() != "exists" || q.Threshold() != 0 {
		t.Errorf("zero Quantifier = %v (threshold %v), want exists", q, q.Threshold())
	}
}
