package temporal

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Randomized boundary coverage for the window lookup helpers: WindowOf
// and OverlappingWindows must agree with brute force over arbitrary
// window relations (unit- and change-based), for time points at window
// edges and intervals straddling the lifetime ends.

// genWindows draws a random window relation over a random lifetime,
// alternating between unit and change-based specs.
func genWindows(r *rand.Rand) (Interval, []Window) {
	start := Time(r.Intn(21) - 10)
	life := Interval{Start: start, End: start + Time(1+r.Intn(30))}
	if r.Intn(2) == 0 {
		return life, MustEveryN(Time(1+r.Intn(6))).Windows(life, nil)
	}
	var changes []Time
	for t := life.Start + 1; t < life.End; t++ {
		if r.Intn(3) == 0 {
			changes = append(changes, t)
		}
	}
	return life, MustEveryNChanges(1+r.Intn(4)).Windows(life, changes)
}

// bruteWindowOf is the specification WindowOf's binary search must
// match: the unique window whose interval contains t.
func bruteWindowOf(windows []Window, t Time) (Window, bool) {
	for _, w := range windows {
		if w.Interval.Contains(t) {
			return w, true
		}
	}
	return Window{}, false
}

// bruteOverlapping is the specification for OverlappingWindows: an
// empty interval overlaps nothing.
func bruteOverlapping(windows []Window, iv Interval) []Window {
	if iv.IsEmpty() {
		return nil
	}
	var out []Window
	for _, w := range windows {
		if w.Interval.Overlaps(iv) {
			out = append(out, w)
		}
	}
	return out
}

func TestWindowOfQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		life, ws := genWindows(r)
		// Probe every boundary-adjacent point: window starts, ends, their
		// neighbours, and the lifetime edges — plus a few random points.
		probes := []Time{life.Start, life.Start - 1, life.End, life.End - 1, life.End + 1}
		for _, w := range ws {
			probes = append(probes, w.Interval.Start, w.Interval.Start-1, w.Interval.End, w.Interval.End-1)
		}
		for i := 0; i < 8; i++ {
			probes = append(probes, life.Start+Time(r.Intn(40)-5))
		}
		for _, p := range probes {
			got, ok := WindowOf(ws, p)
			want, wantOK := bruteWindowOf(ws, p)
			if ok != wantOK || got != want {
				t.Logf("seed %d: WindowOf(%v, %d) = %v, %v; brute force %v, %v", seed, ws, p, got, ok, want, wantOK)
				return false
			}
			if ok && !got.Interval.Contains(p) {
				t.Logf("seed %d: WindowOf(%d) returned %v not containing the point", seed, p, got)
				return false
			}
		}
		// Every point inside the lifetime is in exactly one window, and
		// the lifetime end itself is in none (windows are clamped).
		if _, ok := WindowOf(ws, life.End); ok {
			t.Logf("seed %d: lifetime end %d should be outside every window", seed, life.End)
			return false
		}
		for p := life.Start; p < life.End; p++ {
			if _, ok := WindowOf(ws, p); !ok {
				t.Logf("seed %d: lifetime point %d not covered by any window in %v", seed, p, ws)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOverlappingWindowsQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		life, ws := genWindows(r)
		// Intervals at and straddling the lifetime ends, plus random ones.
		ivs := []Interval{
			life,
			{Start: life.Start - 3, End: life.Start + 1}, // straddles the start
			{Start: life.End - 1, End: life.End + 3},     // straddles the end
			{Start: life.Start - 5, End: life.End + 5},   // covers everything
			{Start: life.End, End: life.End + 4},         // entirely past the end
			{Start: life.Start - 4, End: life.Start},     // entirely before the start
			{Start: life.Start, End: life.Start},         // empty
		}
		for i := 0; i < 8; i++ {
			s := life.Start + Time(r.Intn(35)-5)
			ivs = append(ivs, Interval{Start: s, End: s + Time(r.Intn(10))})
		}
		for _, iv := range ivs {
			got := OverlappingWindows(ws, iv)
			want := bruteOverlapping(ws, iv)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Logf("seed %d: OverlappingWindows(%v, %v) = %v, brute force %v", seed, ws, iv, got, want)
				return false
			}
			// The run must be consecutive in window index.
			for i := 1; i < len(got); i++ {
				if got[i].Index != got[i-1].Index+1 {
					t.Logf("seed %d: OverlappingWindows(%v) indexes not consecutive: %v", seed, iv, got)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
