package temporal

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewInterval(t *testing.T) {
	iv, err := NewInterval(1, 7)
	if err != nil {
		t.Fatalf("NewInterval(1, 7): %v", err)
	}
	if iv.Start != 1 || iv.End != 7 {
		t.Errorf("got %v, want [1, 7)", iv)
	}
	if _, err := NewInterval(7, 1); err == nil {
		t.Error("NewInterval(7, 1): want error, got nil")
	}
	if iv, err := NewInterval(3, 3); err != nil || !iv.IsEmpty() {
		t.Errorf("NewInterval(3, 3) = %v, %v; want empty, nil", iv, err)
	}
}

func TestMustIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustInterval(5, 2): want panic")
		}
	}()
	MustInterval(5, 2)
}

func TestDuration(t *testing.T) {
	cases := []struct {
		iv   Interval
		want Time
	}{
		{MustInterval(1, 7), 6},
		{MustInterval(2, 3), 1},
		{Empty, 0},
		{Interval{Start: 9, End: 2}, 0},
	}
	for _, c := range cases {
		if got := c.iv.Duration(); got != c.want {
			t.Errorf("%v.Duration() = %d, want %d", c.iv, got, c.want)
		}
	}
}

func TestContains(t *testing.T) {
	iv := MustInterval(2, 5)
	for _, tc := range []struct {
		t    Time
		want bool
	}{{1, false}, {2, true}, {4, true}, {5, false}} {
		if got := iv.Contains(tc.t); got != tc.want {
			t.Errorf("%v.Contains(%d) = %v, want %v", iv, tc.t, got, tc.want)
		}
	}
}

func TestCovers(t *testing.T) {
	iv := MustInterval(1, 9)
	if !iv.Covers(MustInterval(2, 5)) {
		t.Error("[1,9) should cover [2,5)")
	}
	if !iv.Covers(iv) {
		t.Error("interval should cover itself")
	}
	if iv.Covers(MustInterval(0, 5)) {
		t.Error("[1,9) should not cover [0,5)")
	}
	if !iv.Covers(Empty) {
		t.Error("any interval covers the empty interval")
	}
}

func TestOverlapsMeetsAdjacent(t *testing.T) {
	a := MustInterval(1, 4)
	b := MustInterval(4, 7)
	c := MustInterval(3, 5)
	d := MustInterval(6, 9)
	if a.Overlaps(b) {
		t.Error("[1,4) and [4,7) must not overlap (closed-open)")
	}
	if !a.Meets(b) {
		t.Error("[1,4) meets [4,7)")
	}
	if !a.Adjacent(b) || !b.Adjacent(a) {
		t.Error("meeting intervals are adjacent in both orders")
	}
	if !a.Overlaps(c) || !c.Overlaps(a) {
		t.Error("[1,4) and [3,5) overlap")
	}
	if a.Adjacent(d) {
		t.Error("[1,4) and [6,9) are not adjacent")
	}
}

func TestIntersect(t *testing.T) {
	cases := []struct {
		a, b, want Interval
	}{
		{MustInterval(1, 7), MustInterval(2, 5), MustInterval(2, 5)},
		{MustInterval(1, 4), MustInterval(3, 9), MustInterval(3, 4)},
		{MustInterval(1, 4), MustInterval(4, 9), Empty},
		{MustInterval(1, 4), MustInterval(7, 9), Empty},
	}
	for _, c := range cases {
		if got := c.a.Intersect(c.b); !got.Equal(c.want) {
			t.Errorf("%v.Intersect(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Intersect(c.a); !got.Equal(c.want) {
			t.Errorf("Intersect not commutative for %v, %v", c.a, c.b)
		}
	}
}

func TestUnionAndSpan(t *testing.T) {
	if got := MustInterval(1, 4).Union(MustInterval(3, 9)); got != MustInterval(1, 9) {
		t.Errorf("Union = %v, want [1, 9)", got)
	}
	if got := Span(MustInterval(5, 6), Empty, MustInterval(1, 2)); got != MustInterval(1, 6) {
		t.Errorf("Span = %v, want [1, 6)", got)
	}
	if got := Span(); !got.IsEmpty() {
		t.Errorf("Span() = %v, want empty", got)
	}
}

func TestCoalesceIntervals(t *testing.T) {
	in := []Interval{
		MustInterval(5, 7), MustInterval(1, 3), MustInterval(3, 5),
		MustInterval(10, 12), Empty, MustInterval(11, 15),
	}
	got := CoalesceIntervals(in)
	want := []Interval{MustInterval(1, 7), MustInterval(10, 15)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CoalesceIntervals = %v, want %v", got, want)
	}
	if CoalesceIntervals(nil) != nil {
		t.Error("CoalesceIntervals(nil) should be nil")
	}
}

func TestCoveredDuration(t *testing.T) {
	ivs := []Interval{MustInterval(1, 4), MustInterval(3, 6), MustInterval(8, 9)}
	if got := CoveredDuration(ivs, MustInterval(0, 10)); got != 6 {
		t.Errorf("CoveredDuration = %d, want 6", got)
	}
	if got := CoveredDuration(ivs, MustInterval(2, 5)); got != 3 {
		t.Errorf("CoveredDuration clipped = %d, want 3", got)
	}
	if got := CoveredDuration(nil, MustInterval(0, 10)); got != 0 {
		t.Errorf("CoveredDuration(nil) = %d, want 0", got)
	}
}

func TestSubtractAll(t *testing.T) {
	iv := MustInterval(0, 10)
	got := SubtractAll(iv, []Interval{MustInterval(2, 4), MustInterval(6, 7)})
	want := []Interval{MustInterval(0, 2), MustInterval(4, 6), MustInterval(7, 10)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SubtractAll = %v, want %v", got, want)
	}
	if got := SubtractAll(iv, []Interval{iv}); got != nil {
		t.Errorf("subtracting a cover of itself should leave nothing, got %v", got)
	}
	if got := SubtractAll(iv, nil); !reflect.DeepEqual(got, []Interval{iv}) {
		t.Errorf("subtracting nothing should return the input, got %v", got)
	}
}

// genIntervals produces a random small interval set for property tests.
func genIntervals(r *rand.Rand, n int) []Interval {
	ivs := make([]Interval, n)
	for i := range ivs {
		s := Time(r.Intn(50))
		ivs[i] = Interval{Start: s, End: s + Time(r.Intn(10))}
	}
	return ivs
}

func TestCoalesceIntervalsProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := genIntervals(r, r.Intn(20))
		out := CoalesceIntervals(in)
		// 1. Output is sorted, disjoint and non-adjacent.
		for i := 1; i < len(out); i++ {
			if !out[i-1].Before(out[i]) || out[i-1].Adjacent(out[i]) {
				return false
			}
		}
		// 2. Point-set equivalence over the full domain.
		for p := Time(0); p < 70; p++ {
			inCover, outCover := false, false
			for _, iv := range in {
				if iv.Contains(p) {
					inCover = true
					break
				}
			}
			for _, iv := range out {
				if iv.Contains(p) {
					outCover = true
					break
				}
			}
			if inCover != outCover {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSubtractAllProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		iv := Interval{Start: Time(r.Intn(20)), End: Time(20 + r.Intn(30))}
		cover := genIntervals(r, r.Intn(10))
		rest := SubtractAll(iv, cover)
		// Every point of iv is in exactly one of (cover ∩ iv) or rest.
		for p := iv.Start; p < iv.End; p++ {
			covered := false
			for _, c := range cover {
				if c.Contains(p) {
					covered = true
					break
				}
			}
			inRest := false
			for _, rv := range rest {
				if rv.Contains(p) {
					inRest = true
					break
				}
			}
			if covered == inRest {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
