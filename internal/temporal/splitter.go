package temporal

import (
	"slices"
	"sort"
)

// The temporal splitter implements the alignment primitive of Dignös et
// al. ("Temporal Alignment", SIGMOD 2012) that the paper's VE
// algorithms build on: a set of intervals is decomposed into
// *elementary* intervals — the finest partition of the covered
// timeline such that every input interval is a union of elementary
// intervals. Point-semantics operators can then evaluate their
// non-temporal variant once per elementary interval instead of once
// per time point.

// Boundaries returns the sorted, de-duplicated start and end points of
// all non-empty input intervals.
func Boundaries(ivs []Interval) []Time {
	pts := make([]Time, 0, 2*len(ivs))
	for _, iv := range ivs {
		if iv.IsEmpty() {
			continue
		}
		pts = append(pts, iv.Start, iv.End)
	}
	if len(pts) == 0 {
		return nil
	}
	slices.Sort(pts) // specialised sort: no per-call reflection allocs
	out := pts[:1]
	for _, p := range pts[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// Elementary returns the elementary intervals induced by the input
// set: consecutive pairs of boundary points. Gaps between disjoint
// inputs are included; callers that need only covered elementary
// intervals should intersect with the inputs (see SplitBy).
func Elementary(ivs []Interval) []Interval {
	pts := Boundaries(ivs)
	if len(pts) < 2 {
		return nil
	}
	out := make([]Interval, 0, len(pts)-1)
	for i := 0; i+1 < len(pts); i++ {
		out = append(out, Interval{Start: pts[i], End: pts[i+1]})
	}
	return out
}

// SplitBy splits iv at every boundary point that falls strictly inside
// it, returning the ordered fragments whose union is iv. Points at or
// outside the bounds of iv are ignored. If iv is empty, SplitBy returns
// nil. The points slice must be sorted ascending.
func SplitBy(iv Interval, points []Time) []Interval {
	if iv.IsEmpty() {
		return nil
	}
	out := make([]Interval, 0, 4)
	cur := iv.Start
	i := sort.Search(len(points), func(i int) bool { return points[i] > iv.Start })
	for ; i < len(points) && points[i] < iv.End; i++ {
		out = append(out, Interval{Start: cur, End: points[i]})
		cur = points[i]
	}
	out = append(out, Interval{Start: cur, End: iv.End})
	return out
}

// Stated pairs a value with its period of validity. It is the unit of
// temporal relations throughout the system.
type Stated[T any] struct {
	Interval Interval
	Value    T
}

// Align splits every input state at the union of all boundary points of
// the input set, so that any two output intervals are either identical
// or disjoint. This is the group-local "temporal splitter" step used by
// the VE variants of both zoom operators (Algorithm 2, lines 1-10).
func Align[T any](states []Stated[T]) []Stated[T] {
	ivs := make([]Interval, len(states))
	for i, s := range states {
		ivs[i] = s.Interval
	}
	pts := Boundaries(ivs)
	out := make([]Stated[T], 0, len(states))
	for _, s := range states {
		for _, frag := range SplitBy(s.Interval, pts) {
			out = append(out, Stated[T]{Interval: frag, Value: s.Value})
		}
	}
	return out
}

// Coalesce merges value-equivalent adjacent (meeting or overlapping)
// states into states of maximal length, implementing the partitioning
// method for temporal coalescing: sort by start time, then fold,
// merging a state into its predecessor when the intervals are adjacent
// and the values are equivalent under eq. The input slice is not
// modified; the result is sorted by (Start, End).
//
// The caller is responsible for grouping by entity first: Coalesce
// treats every input state as belonging to the same entity.
func Coalesce[T any](states []Stated[T], eq func(a, b T) bool) []Stated[T] {
	work := make([]Stated[T], 0, len(states))
	for _, s := range states {
		if !s.Interval.IsEmpty() {
			work = append(work, s)
		}
	}
	if len(work) == 0 {
		return nil
	}
	sort.Slice(work, func(i, j int) bool { return work[i].Interval.Before(work[j].Interval) })
	out := work[:1]
	for _, s := range work[1:] {
		last := &out[len(out)-1]
		if last.Interval.Adjacent(s.Interval) && eq(last.Value, s.Value) {
			last.Interval = last.Interval.Union(s.Interval)
		} else {
			out = append(out, s)
		}
	}
	return out
}

// IsCoalesced reports whether the states (all assumed to belong to one
// entity) are coalesced under eq: no two states overlap, and no two
// value-equivalent states are adjacent.
func IsCoalesced[T any](states []Stated[T], eq func(a, b T) bool) bool {
	if len(states) < 2 {
		return true
	}
	sorted := make([]Stated[T], len(states))
	copy(sorted, states)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Interval.Before(sorted[j].Interval) })
	for i := 1; i < len(sorted); i++ {
		prev, cur := sorted[i-1], sorted[i]
		if prev.Interval.Overlaps(cur.Interval) {
			return false
		}
		if prev.Interval.Adjacent(cur.Interval) && eq(prev.Value, cur.Value) {
			return false
		}
	}
	return true
}
