package temporal

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBoundaries(t *testing.T) {
	in := []Interval{MustInterval(2, 7), MustInterval(1, 7), MustInterval(5, 9), Empty}
	got := Boundaries(in)
	want := []Time{1, 2, 5, 7, 9}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Boundaries = %v, want %v", got, want)
	}
	if Boundaries(nil) != nil {
		t.Error("Boundaries(nil) should be nil")
	}
}

func TestElementary(t *testing.T) {
	// The OGC bitset periods of Figure 7: vertices [1,7), [2,9), [1,9)
	// and edges [2,7), [7,9) induce T = {[1,2), [2,7), [7,9)}.
	in := []Interval{MustInterval(1, 7), MustInterval(2, 9), MustInterval(1, 9), MustInterval(2, 7), MustInterval(7, 9)}
	got := Elementary(in)
	want := []Interval{MustInterval(1, 2), MustInterval(2, 7), MustInterval(7, 9)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Elementary = %v, want %v", got, want)
	}
}

func TestSplitBy(t *testing.T) {
	iv := MustInterval(2, 9)
	got := SplitBy(iv, []Time{1, 2, 5, 7, 9, 11})
	want := []Interval{MustInterval(2, 5), MustInterval(5, 7), MustInterval(7, 9)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SplitBy = %v, want %v", got, want)
	}
	if got := SplitBy(iv, nil); !reflect.DeepEqual(got, []Interval{iv}) {
		t.Errorf("SplitBy with no points = %v, want [%v]", got, iv)
	}
	if SplitBy(Empty, []Time{1}) != nil {
		t.Error("SplitBy(empty) should be nil")
	}
}

func TestAlign(t *testing.T) {
	states := []Stated[string]{
		{MustInterval(1, 7), "a"},
		{MustInterval(2, 9), "b"},
	}
	got := Align(states)
	want := []Stated[string]{
		{MustInterval(1, 2), "a"},
		{MustInterval(2, 7), "a"},
		{MustInterval(2, 7), "b"},
		{MustInterval(7, 9), "b"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Align = %v, want %v", got, want)
	}
}

func TestCoalesceStates(t *testing.T) {
	eq := func(a, b string) bool { return a == b }
	in := []Stated[string]{
		{MustInterval(5, 9), "x"},
		{MustInterval(1, 3), "x"},
		{MustInterval(3, 5), "x"},
		{MustInterval(9, 12), "y"},
	}
	got := Coalesce(in, eq)
	want := []Stated[string]{
		{MustInterval(1, 9), "x"},
		{MustInterval(9, 12), "y"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Coalesce = %v, want %v", got, want)
	}
	if !IsCoalesced(got, eq) {
		t.Error("Coalesce output must be coalesced")
	}
	if IsCoalesced(in, eq) {
		t.Error("input was not coalesced")
	}
}

func TestCoalesceGapPreserved(t *testing.T) {
	eq := func(a, b string) bool { return a == b }
	in := []Stated[string]{
		{MustInterval(1, 3), "x"},
		{MustInterval(5, 7), "x"},
	}
	got := Coalesce(in, eq)
	if len(got) != 2 {
		t.Fatalf("states separated by a gap must not merge: %v", got)
	}
}

// TestAlignCoalesceRoundTrip: aligning then coalescing value-equal
// states must reproduce the coalesced original point set and values.
func TestAlignCoalesceRoundTrip(t *testing.T) {
	eq := func(a, b int) bool { return a == b }
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(15)
		states := make([]Stated[int], n)
		for i := range states {
			s := Time(r.Intn(30))
			states[i] = Stated[int]{
				Interval: Interval{Start: s, End: s + 1 + Time(r.Intn(8))},
				Value:    r.Intn(3),
			}
		}
		aligned := Align(states)
		// Every aligned fragment must be covered by its source value's
		// original point set, and total per-value coverage preserved.
		for v := 0; v < 3; v++ {
			var orig, frag []Interval
			for _, s := range states {
				if s.Value == v {
					orig = append(orig, s.Interval)
				}
			}
			for _, s := range aligned {
				if s.Value == v {
					frag = append(frag, s.Interval)
				}
			}
			co, cf := CoalesceIntervals(orig), CoalesceIntervals(frag)
			if !reflect.DeepEqual(co, cf) {
				return false
			}
		}
		// Alignment must produce identical-or-disjoint intervals.
		for i := range aligned {
			for j := i + 1; j < len(aligned); j++ {
				a, b := aligned[i].Interval, aligned[j].Interval
				if a.Overlaps(b) && !a.Equal(b) {
					return false
				}
			}
		}
		_ = eq
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCoalesceIdempotent(t *testing.T) {
	eq := func(a, b int) bool { return a == b }
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(12)
		// A valid TGraph has at most one state per entity per time
		// point, so generate sequential (possibly meeting, possibly
		// gapped) states.
		states := make([]Stated[int], n)
		cur := Time(0)
		for i := range states {
			cur += Time(r.Intn(3)) // 0 = meets previous, >0 = gap
			end := cur + 1 + Time(r.Intn(5))
			states[i] = Stated[int]{
				Interval: Interval{Start: cur, End: end},
				Value:    r.Intn(2),
			}
			cur = end
		}
		once := Coalesce(states, eq)
		twice := Coalesce(once, eq)
		return reflect.DeepEqual(once, twice) && IsCoalesced(once, eq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
