package temporal

import (
	"fmt"
	"strconv"
	"strings"
)

// Window associates a window number with its period of validity,
// mirroring the paper's temporal relation W with schema (d | T).
type Window struct {
	Index    int
	Interval Interval
}

// WindowSpec is a tumbling (non-overlapping) temporal window
// specification of the form "n {unit|changes}". Given the lifetime of a
// TGraph and its change points, a spec materialises the window relation
// used by wZoom^T.
type WindowSpec interface {
	// Windows returns the sequence of consecutive windows covering
	// lifetime. changePoints lists the sorted times at which the graph
	// changed (snapshot boundaries), used by change-based windows.
	Windows(lifetime Interval, changePoints []Time) []Window
	String() string
}

// unitWindow implements "n unit": windows of n ticks each, aligned to
// the start of the graph lifetime.
type unitWindow struct {
	n Time
}

// EveryN returns a window specification producing consecutive windows
// of n time points each, e.g. EveryN(3) over months yields quarters.
func EveryN(n Time) (WindowSpec, error) {
	if n <= 0 {
		return nil, fmt.Errorf("temporal: window size must be positive, got %d", n)
	}
	return unitWindow{n: n}, nil
}

// MustEveryN is like EveryN but panics on invalid size.
func MustEveryN(n Time) WindowSpec {
	w, err := EveryN(n)
	if err != nil {
		panic(err)
	}
	return w
}

func (w unitWindow) Windows(lifetime Interval, _ []Time) []Window {
	if lifetime.IsEmpty() {
		return nil
	}
	out := make([]Window, 0, int(lifetime.Duration()/w.n)+1)
	idx := 0
	for s := lifetime.Start; s < lifetime.End; s += w.n {
		// The final window is clamped to the lifetime end (the way
		// change-based windows end at the last boundary): points past the
		// lifetime are unobservable, and letting the window overhang would
		// make quantifiers judge entities against time that cannot exist —
		// an entity alive for the whole observable tail would fail All().
		end := s + w.n
		if end > lifetime.End {
			end = lifetime.End
		}
		out = append(out, Window{Index: idx, Interval: Interval{Start: s, End: end}})
		idx++
	}
	return out
}

func (w unitWindow) String() string { return fmt.Sprintf("%d units", w.n) }

// UsesChangePoints reports that unit windows ignore the change points:
// their relation depends only on the lifetime. Incremental maintenance
// (internal/incr) keys off this to decide whether a delta can
// restructure the window relation.
func (w unitWindow) UsesChangePoints() bool { return false }

// changeWindow implements "n changes": each window spans n consecutive
// states of the graph (n elementary intervals between change points).
type changeWindow struct {
	n int
}

// EveryNChanges returns a window specification in which each window
// covers n consecutive change intervals (snapshots) of the graph.
func EveryNChanges(n int) (WindowSpec, error) {
	if n <= 0 {
		return nil, fmt.Errorf("temporal: change-window size must be positive, got %d", n)
	}
	return changeWindow{n: n}, nil
}

// MustEveryNChanges is like EveryNChanges but panics on invalid size.
func MustEveryNChanges(n int) WindowSpec {
	w, err := EveryNChanges(n)
	if err != nil {
		panic(err)
	}
	return w
}

func (w changeWindow) Windows(lifetime Interval, changePoints []Time) []Window {
	if lifetime.IsEmpty() {
		return nil
	}
	// Build the ordered list of boundaries inside the lifetime:
	// lifetime.Start, interior change points, lifetime.End.
	bounds := make([]Time, 0, len(changePoints)+2)
	bounds = append(bounds, lifetime.Start)
	for _, p := range changePoints {
		if p > lifetime.Start && p < lifetime.End {
			bounds = append(bounds, p)
		}
	}
	bounds = append(bounds, lifetime.End)

	var out []Window
	idx := 0
	for i := 0; i+1 < len(bounds); i += w.n {
		end := i + w.n
		if end > len(bounds)-1 {
			end = len(bounds) - 1
		}
		out = append(out, Window{Index: idx, Interval: Interval{Start: bounds[i], End: bounds[end]}})
		idx++
	}
	return out
}

func (w changeWindow) String() string { return fmt.Sprintf("%d changes", w.n) }

// UsesChangePoints reports that change-based windows derive their
// boundaries from the change points, so any state insertion can
// restructure the whole window relation.
func (w changeWindow) UsesChangePoints() bool { return true }

// ParseWindowSpec parses the paper's textual window specification
// "n {unit|changes}", e.g. "3 months", "10 min", "2 changes". All time
// units other than "changes" are treated as ticks of the dataset's
// temporal resolution; "3 months" therefore means 3 ticks.
func ParseWindowSpec(s string) (WindowSpec, error) {
	fields := strings.Fields(strings.TrimSpace(s))
	if len(fields) != 2 {
		return nil, fmt.Errorf("temporal: window spec %q: want \"n {unit|changes}\"", s)
	}
	n, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("temporal: window spec %q: %v", s, err)
	}
	unit := strings.ToLower(fields[1])
	if unit == "changes" || unit == "change" {
		return EveryNChanges(int(n))
	}
	return EveryN(Time(n))
}

// WindowOf returns the window containing time point t, using binary
// search over the sorted window relation. ok is false if t is outside
// every window.
func WindowOf(windows []Window, t Time) (Window, bool) {
	lo, hi := 0, len(windows)
	for lo < hi {
		mid := (lo + hi) / 2
		w := windows[mid]
		switch {
		case t < w.Interval.Start:
			hi = mid
		case t >= w.Interval.End:
			lo = mid + 1
		default:
			return w, true
		}
	}
	return Window{}, false
}

// OverlappingWindows returns the consecutive run of windows that
// overlap iv.
func OverlappingWindows(windows []Window, iv Interval) []Window {
	if iv.IsEmpty() {
		return nil
	}
	var out []Window
	for _, w := range windows {
		if w.Interval.Overlaps(iv) {
			out = append(out, w)
		} else if len(out) > 0 {
			break
		}
	}
	return out
}
