// Package temporal implements the discrete temporal domain underlying a
// TGraph: time points, closed-open intervals, interval algebra, temporal
// alignment (splitting), coalescing kernels, tumbling window
// specifications and existence quantifiers.
//
// Following the paper's Section 2 model (and SQL:2011), an interval
// [start, end) is a purely syntactic device denoting the discrete,
// contiguous set of time points {start, start+1, ..., end-1}; all
// operator semantics are point-based. The window specifications and
// quantifiers are the ones wZoom^T (Section 3.2) is parameterised by.
package temporal

import (
	"fmt"
	"math"
	"sort"
)

// Time is a discrete time point drawn from a linearly ordered domain.
// Datasets are free to interpret ticks as months, years or UNIX
// timestamps; the algebra only relies on the ordering.
type Time int64

// MinTime and MaxTime bound the temporal domain. They are reserved as
// sentinels ("beginning of time" / "forever") and never appear as data
// points themselves.
const (
	MinTime Time = math.MinInt64 / 4
	MaxTime Time = math.MaxInt64 / 4
)

// Interval is a closed-open interval [Start, End) of discrete time
// points. An interval with End <= Start is empty.
type Interval struct {
	Start Time
	End   Time
}

// Empty is the canonical empty interval.
var Empty = Interval{}

// NewInterval returns the interval [start, end). It returns an error if
// end < start; [t, t) is allowed and denotes the empty interval.
func NewInterval(start, end Time) (Interval, error) {
	if end < start {
		return Interval{}, fmt.Errorf("temporal: invalid interval [%d, %d): end before start", start, end)
	}
	return Interval{Start: start, End: end}, nil
}

// MustInterval is like NewInterval but panics on invalid bounds. It is
// intended for literals in tests and examples.
func MustInterval(start, end Time) Interval {
	iv, err := NewInterval(start, end)
	if err != nil {
		panic(err)
	}
	return iv
}

// IsEmpty reports whether the interval contains no time points.
func (iv Interval) IsEmpty() bool { return iv.End <= iv.Start }

// Duration returns the number of time points in the interval.
func (iv Interval) Duration() Time {
	if iv.IsEmpty() {
		return 0
	}
	return iv.End - iv.Start
}

// Contains reports whether time point t lies in [Start, End).
func (iv Interval) Contains(t Time) bool { return t >= iv.Start && t < iv.End }

// Covers reports whether every point of other lies in iv. The empty
// interval is covered by every interval.
func (iv Interval) Covers(other Interval) bool {
	if other.IsEmpty() {
		return true
	}
	return iv.Start <= other.Start && other.End <= iv.End
}

// Overlaps reports whether the two intervals share at least one point.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start < other.End && other.Start < iv.End
}

// Meets reports whether iv ends exactly where other begins.
func (iv Interval) Meets(other Interval) bool {
	return !iv.IsEmpty() && !other.IsEmpty() && iv.End == other.Start
}

// Adjacent reports whether the two intervals overlap or meet in either
// order, i.e. whether their union is a single interval.
func (iv Interval) Adjacent(other Interval) bool {
	return iv.Overlaps(other) || iv.Meets(other) || other.Meets(iv)
}

// Intersect returns the largest interval contained in both inputs, or
// the empty interval if they are disjoint.
func (iv Interval) Intersect(other Interval) Interval {
	s := max(iv.Start, other.Start)
	e := min(iv.End, other.End)
	if e <= s {
		return Empty
	}
	return Interval{Start: s, End: e}
}

// Union returns the smallest single interval covering both inputs. It
// is only meaningful when the inputs are Adjacent; for disjoint inputs
// it also covers the gap.
func (iv Interval) Union(other Interval) Interval {
	if iv.IsEmpty() {
		return other
	}
	if other.IsEmpty() {
		return iv
	}
	return Interval{Start: min(iv.Start, other.Start), End: max(iv.End, other.End)}
}

// Equal reports whether the two intervals denote the same point set.
func (iv Interval) Equal(other Interval) bool {
	if iv.IsEmpty() && other.IsEmpty() {
		return true
	}
	return iv == other
}

// Before reports whether iv starts strictly before other, breaking ties
// by end. It induces the canonical sort order for interval sequences.
func (iv Interval) Before(other Interval) bool {
	if iv.Start != other.Start {
		return iv.Start < other.Start
	}
	return iv.End < other.End
}

// String renders the interval in the paper's [start, end) notation.
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "[)"
	}
	return fmt.Sprintf("[%d, %d)", iv.Start, iv.End)
}

// Span returns the smallest interval covering every non-empty input, or
// the empty interval when there is none.
func Span(ivs ...Interval) Interval {
	out := Empty
	for _, iv := range ivs {
		if iv.IsEmpty() {
			continue
		}
		if out.IsEmpty() {
			out = iv
			continue
		}
		out = out.Union(iv)
	}
	return out
}

// SortIntervals sorts intervals in place by (Start, End).
func SortIntervals(ivs []Interval) {
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Before(ivs[j]) })
}

// CoalesceIntervals merges overlapping and meeting intervals into a
// minimal sorted sequence of disjoint, non-adjacent intervals covering
// the same point set. Empty inputs are dropped. The input is not
// modified.
func CoalesceIntervals(ivs []Interval) []Interval {
	work := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.IsEmpty() {
			work = append(work, iv)
		}
	}
	if len(work) == 0 {
		return nil
	}
	SortIntervals(work)
	out := work[:1]
	for _, iv := range work[1:] {
		last := &out[len(out)-1]
		if last.Adjacent(iv) {
			*last = last.Union(iv)
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// CoveredDuration returns the number of time points of within that are
// covered by at least one of the given intervals. Overlapping inputs
// are not double-counted.
func CoveredDuration(ivs []Interval, within Interval) Time {
	var total Time
	for _, iv := range CoalesceIntervals(ivs) {
		total += iv.Intersect(within).Duration()
	}
	return total
}

// SubtractAll returns the portion of iv not covered by any interval in
// cover, as a sorted sequence of disjoint intervals.
func SubtractAll(iv Interval, cover []Interval) []Interval {
	if iv.IsEmpty() {
		return nil
	}
	var out []Interval
	cur := iv.Start
	for _, c := range CoalesceIntervals(cover) {
		c = c.Intersect(iv)
		if c.IsEmpty() {
			continue
		}
		if c.Start > cur {
			out = append(out, Interval{Start: cur, End: c.Start})
		}
		if c.End > cur {
			cur = c.End
		}
	}
	if cur < iv.End {
		out = append(out, Interval{Start: cur, End: iv.End})
	}
	return out
}
