package shard

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/props"
	"repro/internal/qcache"
	"repro/internal/storage"
	"repro/internal/storage/wal"
	"repro/internal/temporal"
)

// edgeKey identifies one input edge (id plus both endpoints, so
// parallel edges with distinct endpoints stay distinct — VE's edge
// identity, the same key the incremental views use).
type edgeKey struct {
	ID       core.EdgeID
	Src, Dst core.VertexID
}

// cancelStride is how many entities a worker processes between
// cancellation checks; the kernels themselves are context-free.
const cancelStride = 512

// Worker is one in-process shard: the shard's state maps (masters,
// mirrors, owned edges), its own dataflow context and scan options for
// (re)loads, its own write-ahead logs when disk-backed, and a small
// cache of partial results keyed by the shard's state version.
//
// All query methods take the scatter leg's context and abort between
// entities when it ends. State mutations (loads, appends) are
// serialised by the coordinator; queries run concurrently under the
// read lock.
type Worker struct {
	idx        int
	baseDir    string // "" for in-memory workers
	mirrorPath string
	dctx       *dataflow.Context
	scanPar    int
	cache      *qcache.Cache
	walOpts    wal.Options
	openWAL    bool

	mu      sync.RWMutex
	loaded  bool
	version uint64 // bumped on every state mutation; part of cache keys
	stamp   string
	masters map[core.VertexID][]core.HistoryItem
	mirrors map[core.VertexID][]core.HistoryItem
	edges   map[edgeKey][]core.HistoryItem
	// endpoints is the set of vertex ids referenced by local edges —
	// the vertices whose future states must replicate to this shard.
	endpoints map[core.VertexID]struct{}
	span      temporal.Interval // span of base (master + edge) states
	baseLog   *wal.Log
	mirLog    *wal.Log
}

// newDiskWorker builds an unloaded worker over shard directory sd.
func newDiskWorker(idx int, sd string, opts Options) *Worker {
	return &Worker{
		idx:        idx,
		baseDir:    baseDir(sd),
		mirrorPath: mirrorDir(sd),
		dctx:       dataflow.NewContext(dataflow.WithParallelism(opts.Parallelism)),
		scanPar:    opts.ScanParallelism,
		cache:      qcache.New(opts.CacheBytes),
		walOpts:    opts.WALOpts,
		openWAL:    opts.OpenWAL,
	}
}

// newMemWorker builds a loaded in-memory worker from a split part.
func newMemWorker(idx int, p Part, opts Options) *Worker {
	w := &Worker{
		idx:   idx,
		dctx:  dataflow.NewContext(dataflow.WithParallelism(opts.Parallelism)),
		cache: qcache.New(opts.CacheBytes),
	}
	w.install(p.Masters, p.Mirrors, p.Edges, "mem")
	return w
}

// install replaces the worker's state maps. Caller must not hold w.mu.
func (w *Worker) install(masters, mirrors []core.VertexTuple, edges []core.EdgeTuple, stamp string) {
	m := make(map[core.VertexID][]core.HistoryItem)
	span := temporal.Empty
	for _, t := range masters {
		m[t.ID] = append(m[t.ID], core.HistoryItem{Interval: t.Interval, Props: t.Props})
		span = temporal.Span(span, t.Interval)
	}
	mir := make(map[core.VertexID][]core.HistoryItem)
	for _, t := range mirrors {
		mir[t.ID] = append(mir[t.ID], core.HistoryItem{Interval: t.Interval, Props: t.Props})
	}
	e := make(map[edgeKey][]core.HistoryItem)
	eps := make(map[core.VertexID]struct{})
	for _, t := range edges {
		k := edgeKey{ID: t.ID, Src: t.Src, Dst: t.Dst}
		e[k] = append(e[k], core.HistoryItem{Interval: t.Interval, Props: t.Props})
		span = temporal.Span(span, t.Interval)
		eps[t.Src] = struct{}{}
		eps[t.Dst] = struct{}{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.masters, w.mirrors, w.edges = m, mir, e
	w.endpoints = eps
	w.span = span
	w.stamp = stamp
	w.loaded = true
	w.version++
}

// stampNow reads the shard's current on-disk identity: the base and
// mirror directories' manifest stamps combined.
func (w *Worker) stampNow() (string, error) {
	s1, err := storage.BaseStamp(w.baseDir)
	if err != nil {
		return "", fmt.Errorf("shard %d: %w", w.idx, err)
	}
	s2, err := storage.BaseStamp(w.mirrorPath)
	if err != nil {
		return "", fmt.Errorf("shard %d: %w", w.idx, err)
	}
	return s1 + "+" + s2, nil
}

// ensure loads (or reloads, when the on-disk stamp changed) a
// disk-backed worker's state through its own scan pool. WAL replay
// happens inside storage.Load, so every previously acked shard append
// is recovered. In-memory workers are always current.
func (w *Worker) ensure(ctx context.Context) error {
	if w.baseDir == "" {
		return nil
	}
	stamp, err := w.stampNow()
	if err != nil {
		return err
	}
	w.mu.RLock()
	current := w.loaded && w.stamp == stamp
	w.mu.RUnlock()
	if current {
		return nil
	}
	load := func(dir string) (core.TGraph, error) {
		g, _, err := storage.Load(w.dctx, dir, storage.LoadOptions{
			Rep:  core.RepVE,
			Scan: storage.ScanOptions{Parallelism: w.scanPar, Ctx: ctx},
		})
		return g, err
	}
	base, err := load(w.baseDir)
	if err != nil {
		return fmt.Errorf("shard %d: base: %w", w.idx, err)
	}
	mir, err := load(w.mirrorPath)
	if err != nil {
		return fmt.Errorf("shard %d: mirror: %w", w.idx, err)
	}
	w.install(base.VertexStates(), mir.VertexStates(), base.EdgeStates(), stamp)
	if w.openWAL {
		w.mu.Lock()
		defer w.mu.Unlock()
		if w.baseLog == nil {
			l, _, err := wal.Open(w.baseDir, w.walOpts)
			if err != nil {
				return fmt.Errorf("shard %d: wal: %w", w.idx, err)
			}
			w.baseLog = l
		}
		if w.mirLog == nil {
			l, _, err := wal.Open(w.mirrorPath, w.walOpts)
			if err != nil {
				return fmt.Errorf("shard %d: mirror wal: %w", w.idx, err)
			}
			w.mirLog = l
		}
	}
	return nil
}

// close releases the worker's dataflow context and logs.
func (w *Worker) close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.baseLog != nil {
		w.baseLog.Close()
		w.baseLog = nil
	}
	if w.mirLog != nil {
		w.mirLog.Close()
		w.mirLog = nil
	}
	w.dctx.Close()
}

// Span returns the interval covered by the shard's base states —
// consulted for range pruning, so it must stay current across appends.
func (w *Worker) Span() temporal.Interval {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.span
}

// cacheKey builds a partial-result cache key bound to the shard's
// current state version, so any append or reload invalidates by
// construction.
func (w *Worker) cacheKey(phase string, parts ...string) string {
	w.mu.RLock()
	stamp, version := w.stamp, w.version
	w.mu.RUnlock()
	return qcache.Key(append([]string{phase, stamp, fmt.Sprint(version)}, parts...)...)
}

// vstatesLocked returns the full AZState list of a vertex the shard
// knows (master or mirror). Caller holds w.mu (read).
func (w *Worker) vstatesLocked(id core.VertexID) []core.AZState {
	h := w.masters[id]
	if h == nil {
		h = w.mirrors[id]
	}
	out := make([]core.AZState, len(h))
	for i, it := range h {
		out[i] = core.AZState{Interval: it.Interval, Props: it.Props}
	}
	return out
}

// azPartial is one shard's contribution to a scattered aZoom: the
// contributing states of every Skolem group touched by its masters
// (group reduction happens at the coordinator, where the group is
// complete) and the fully redirected outputs of its local edges (each
// local edge sees the complete state lists of both endpoints via the
// mirrors, so redirection is exact shard-side).
type azPartial struct {
	Groups map[core.VertexID][]core.AZState
	Edges  []core.EdgeTuple
}

// azoomPartial computes (or returns the cached) aZoom partial.
func (w *Worker) azoomPartial(ctx context.Context, spec *core.AZoomSpec, esk core.EdgeSkolemFunc, canon string) (*azPartial, error) {
	val, _, err := w.cache.DoCtx(ctx, w.cacheKey("az", canon), func() (any, int64, error) {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		w.mu.RLock()
		defer w.mu.RUnlock()
		p := &azPartial{Groups: make(map[core.VertexID][]core.AZState)}
		n := 0
		size := int64(0)
		for id, h := range w.masters {
			if n++; n%cancelStride == 0 && ctx.Err() != nil {
				return nil, 0, ctx.Err()
			}
			for _, it := range h {
				if nid, ok := spec.Skolem(id, it.Props); ok {
					p.Groups[nid] = append(p.Groups[nid], core.AZState{Interval: it.Interval, Props: it.Props})
					size += tupleCost
				}
			}
		}
		for k, h := range w.edges {
			if n++; n%cancelStride == 0 && ctx.Err() != nil {
				return nil, 0, ctx.Err()
			}
			src, dst := w.vstatesLocked(k.Src), w.vstatesLocked(k.Dst)
			for _, it := range h {
				et := core.EdgeTuple{ID: k.ID, Src: k.Src, Dst: k.Dst, Interval: it.Interval, Props: it.Props}
				out := core.RedirectEdge(*spec, esk, et, src, dst)
				p.Edges = append(p.Edges, out...)
				size += int64(len(out)) * tupleCost
			}
		}
		return p, size + 1, nil
	})
	if err != nil {
		return nil, err
	}
	return val.(*azPartial), nil
}

// tupleCost is the rough cache-accounting cost of one state tuple.
const tupleCost = 96

// wzProbe is the first wZoom phase's answer: the shard's data span and
// — for change-based window specs — the boundary points of its
// normalized states. The coordinator merges the probes into the global
// lifetime and change-point set before deriving the window relation
// (the change-window spec filters the merged bounds to the lifetime
// interior itself, so the per-shard union is exact).
type wzProbe struct {
	Lifetime temporal.Interval
	Bounds   []temporal.Time
}

// wzoomProbe computes the shard's probe. Cheap (no redirect, no
// windowing), so it is not cached.
func (w *Worker) wzoomProbe(changeSensitive bool) wzProbe {
	w.mu.RLock()
	defer w.mu.RUnlock()
	p := wzProbe{Lifetime: w.span}
	if !changeSensitive {
		return p
	}
	var ivs []temporal.Interval
	collect := func(h []core.HistoryItem) {
		for _, it := range core.NormalizeHistory(copyHistory(h)) {
			ivs = append(ivs, it.Interval)
		}
	}
	for _, h := range w.masters {
		collect(h)
	}
	for _, h := range w.edges {
		collect(h)
	}
	p.Bounds = temporal.Boundaries(ivs)
	return p
}

// wzPartial is one shard's contribution to a scattered wZoom: its
// master vertices' and local edges' windowed histories, reduced with
// the globally derived window relation. Dangling-edge removal is NOT
// applied here — it is a semijoin against the global vertex outputs,
// which only the coordinator holds.
type wzPartial struct {
	V map[core.VertexID][]core.HistoryItem
	E map[edgeKey][]core.HistoryItem
}

// wzoomPartial computes (or returns the cached) wZoom partial under the
// given global window relation.
func (w *Worker) wzoomPartial(ctx context.Context, spec *core.WZoomSpec, vres, eres props.BoundResolve, windows []temporal.Window, canon string) (*wzPartial, error) {
	key := w.cacheKey("wz", canon, fmt.Sprint(windows))
	val, _, err := w.cache.DoCtx(ctx, key, func() (any, int64, error) {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		w.mu.RLock()
		defer w.mu.RUnlock()
		p := &wzPartial{
			V: make(map[core.VertexID][]core.HistoryItem),
			E: make(map[edgeKey][]core.HistoryItem),
		}
		n := 0
		size := int64(0)
		for id, h := range w.masters {
			if n++; n%cancelStride == 0 && ctx.Err() != nil {
				return nil, 0, ctx.Err()
			}
			if out := core.WZoomEntity(core.NormalizeHistory(copyHistory(h)), windows, spec.VQuant, vres); len(out) > 0 {
				p.V[id] = out
				size += int64(len(out)) * tupleCost
			}
		}
		for k, h := range w.edges {
			if n++; n%cancelStride == 0 && ctx.Err() != nil {
				return nil, 0, ctx.Err()
			}
			if out := core.WZoomEntity(core.NormalizeHistory(copyHistory(h)), windows, spec.EQuant, eres); len(out) > 0 {
				p.E[k] = out
				size += int64(len(out)) * tupleCost
			}
		}
		return p, size + 1, nil
	})
	if err != nil {
		return nil, err
	}
	return val.(*wzPartial), nil
}

// statesPartial is one shard's raw base states (masters and owned
// edges; mirrors are replicas and excluded so the merged multiset is
// exactly the unsharded one), optionally clipped to a range.
type statesPartial struct {
	V []core.VertexTuple
	E []core.EdgeTuple
}

// states gathers (or returns the cached) raw shard states, clipped to
// clip when non-empty — exactly the serving layer's range-step clip.
func (w *Worker) states(ctx context.Context, clip temporal.Interval) (*statesPartial, error) {
	key := w.cacheKey("st", fmt.Sprintf("%d:%d", clip.Start, clip.End))
	val, _, err := w.cache.DoCtx(ctx, key, func() (any, int64, error) {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		w.mu.RLock()
		defer w.mu.RUnlock()
		p := &statesPartial{}
		n := 0
		for id, h := range w.masters {
			if n++; n%cancelStride == 0 && ctx.Err() != nil {
				return nil, 0, ctx.Err()
			}
			for _, it := range h {
				iv := it.Interval
				if !clip.IsEmpty() {
					if !iv.Overlaps(clip) {
						continue
					}
					iv = iv.Intersect(clip)
				}
				p.V = append(p.V, core.VertexTuple{ID: id, Interval: iv, Props: it.Props})
			}
		}
		for k, h := range w.edges {
			if n++; n%cancelStride == 0 && ctx.Err() != nil {
				return nil, 0, ctx.Err()
			}
			for _, it := range h {
				iv := it.Interval
				if !clip.IsEmpty() {
					if !iv.Overlaps(clip) {
						continue
					}
					iv = iv.Intersect(clip)
				}
				p.E = append(p.E, core.EdgeTuple{ID: k.ID, Src: k.Src, Dst: k.Dst, Interval: iv, Props: it.Props})
			}
		}
		return p, int64(len(p.V)+len(p.E))*tupleCost + 1, nil
	})
	if err != nil {
		return nil, err
	}
	return val.(*statesPartial), nil
}

// hasVertex reports whether the shard knows the vertex (as master or
// mirror) — consulted when routing edge appends.
func (w *Worker) hasVertex(id core.VertexID) bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	_, m := w.masters[id]
	_, r := w.mirrors[id]
	return m || r
}

// wantsMirror reports whether a local edge references the vertex, i.e.
// whether vertex appends elsewhere must replicate to this shard.
func (w *Worker) wantsMirror(id core.VertexID) bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	_, ok := w.endpoints[id]
	return ok
}

// noteEndpoint records that a local edge references the vertex even
// though no state of it exists yet anywhere, so later vertex appends
// replicate here.
func (w *Worker) noteEndpoint(id core.VertexID) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.endpoints[id] = struct{}{}
}

// masterStates returns a copy of the vertex's mastered history, for
// seeding another shard's mirror.
func (w *Worker) masterStates(id core.VertexID) []core.HistoryItem {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return copyHistory(w.masters[id])
}

// appendMaster logs (when disk-backed) and applies one vertex delta to
// the shard's mastered states. The log write precedes the in-memory
// mutation, mirroring the serving layer's durability order.
func (w *Worker) appendMaster(d wal.Delta) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.baseLog != nil {
		if _, err := w.baseLog.Append(d); err != nil {
			return fmt.Errorf("shard %d: append: %w", w.idx, err)
		}
	}
	t, ok := d.VertexTuple()
	if !ok {
		return fmt.Errorf("shard %d: appendMaster: not a vertex delta", w.idx)
	}
	w.masters[t.ID] = append(w.masters[t.ID], core.HistoryItem{Interval: t.Interval, Props: t.Props})
	w.span = temporal.Span(w.span, t.Interval)
	w.version++
	return nil
}

// appendMirror logs (to the mirror WAL) and applies vertex deltas to
// the shard's mirror states. Mirror states never contribute to the
// shard's span (their masters do, elsewhere).
func (w *Worker) appendMirror(ds ...wal.Delta) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.mirLog != nil {
		if _, err := w.mirLog.Append(ds...); err != nil {
			return fmt.Errorf("shard %d: mirror append: %w", w.idx, err)
		}
	}
	for _, d := range ds {
		t, ok := d.VertexTuple()
		if !ok {
			return fmt.Errorf("shard %d: appendMirror: not a vertex delta", w.idx)
		}
		w.mirrors[t.ID] = append(w.mirrors[t.ID], core.HistoryItem{Interval: t.Interval, Props: t.Props})
	}
	w.version++
	return nil
}

// appendEdge logs and applies one edge delta to the shard's owned
// edges. Callers must have seeded mirrors for foreign endpoints first.
func (w *Worker) appendEdge(d wal.Delta) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.baseLog != nil {
		if _, err := w.baseLog.Append(d); err != nil {
			return fmt.Errorf("shard %d: append: %w", w.idx, err)
		}
	}
	t, ok := d.EdgeTuple()
	if !ok {
		return fmt.Errorf("shard %d: appendEdge: not an edge delta", w.idx)
	}
	k := edgeKey{ID: t.ID, Src: t.Src, Dst: t.Dst}
	w.edges[k] = append(w.edges[k], core.HistoryItem{Interval: t.Interval, Props: t.Props})
	w.endpoints[t.Src] = struct{}{}
	w.endpoints[t.Dst] = struct{}{}
	w.span = temporal.Span(w.span, t.Interval)
	w.version++
	return nil
}

// copyHistory returns a fresh copy of h (NormalizeHistory sorts in
// place, and callers must not mutate the committed slices).
func copyHistory(h []core.HistoryItem) []core.HistoryItem {
	out := make([]core.HistoryItem, len(h))
	copy(out, h)
	return out
}
