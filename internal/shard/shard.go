// Package shard partitions a loaded temporal graph into N shards and
// serves zoom queries over them with an in-process scatter-gather
// coordinator. Each shard owns its own storage directory, dataflow
// context, scan pool, write-ahead logs and partial-result cache; the
// coordinator fans a request out to every (non-pruned) shard worker
// concurrently, gathers the per-shard partial results and re-reduces
// them across shard boundaries with the zoomstage kernels from
// internal/core — the same kernels the batch pipelines and the
// incremental views call — so the merged output is byte-identical
// (after the canonical coalesce + sort + encode the serving layer
// applies) to the unsharded run.
//
// # Placement
//
// Two families of Strategy are provided. VertexCut wraps the fixed
// graphx edge-partition strategies: every state of an edge lands on one
// shard (the strategies hash only the endpoints), every vertex is
// mastered on one shard (1D hash of its id) and mirrored — full state
// list — to each shard holding one of its edges, which bounds
// replication the GraphX way (2*ceil(sqrt(P)) for EdgePartition2D).
// TimeRange instead slices the graph's lifetime into N contiguous
// ranges and assigns whole states by the range containing their start
// time: entities span shards, so queries cannot be evaluated per shard,
// but range-restricted chains prune the shards whose data span does not
// overlap the clip — the wZoom-heavy "zoomed-out dashboard" workload.
//
// # Scatter protocol
//
// A chain whose first step is an aZoom (built-in aggregates only) over
// a vertex-cut layout is evaluated shard-side: each worker returns its
// per-Skolem-group contributing states (from its masters) and the
// redirected outputs of its local edges (RedirectEdge against the full
// endpoint state lists, masters plus mirrors); the coordinator
// concatenates the group lists and re-reduces each group with AZoomGroup
// — sound because the elementary-interval alignment happens only in the
// final reduce and every built-in aggregate is commutative and
// associative. A leading wZoom (representations VE and OG, where the
// batch path coalesces before windowing) runs in two phases: a probe
// gathers per-shard lifetimes (plus state boundary points when the
// window spec is change-based), the coordinator derives the global
// window relation once, and the second phase has each worker window its
// own entities with WZoomEntity; the dangling-edge semijoin is applied
// at the coordinator against the merged vertex outputs, exactly as the
// batch path evaluates it globally. Every other chain — TimeRange
// layouts, representation switches first, leading range steps, custom
// aggregates — falls back to gathering the shards' raw states (clipped
// and pruned by the leading range, when present) and running the
// unsharded operator chain over the losslessly merged graph; zoom
// outputs depend on inputs only up to coalesce-equivalence, so the
// fallback is byte-identical too.
//
// # Resilience and observability
//
// Each scatter leg runs under a deadline derived from the request
// budget (90% of the remaining budget, reserving the rest for the
// merge), inside its own span, with panics captured per leg. Failed
// legs aggregate into a typed *dataflow.JobError (stage
// "shard.scatter", one TaskError per failed shard); in partial-result
// mode the coordinator instead merges the k surviving legs and reports
// k/n so the serving layer can answer degraded. Counters:
// shard.scatters, shard.legs, shard.leg_failures, shard.partial_merges,
// shard.fallbacks, shard.groups_merged; histogram shard.leg_latency.
package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/graphx"
	"repro/internal/storage"
	"repro/internal/temporal"
)

// ManifestFile is the marker file naming a sharded graph directory.
const ManifestFile = "shards.json"

// Strategy places vertex and edge states on shards. n is the shard
// count; implementations must be pure functions of the tuple and n so
// placement is deterministic across runs and processes.
type Strategy interface {
	// Name is the strategy's stable wire/manifest name.
	Name() string
	// VertexShard returns the master shard of a vertex state. All
	// states of one vertex must map to one shard for EntityLocal
	// strategies.
	VertexShard(t core.VertexTuple, n int) int
	// EdgeShard returns the owning shard of an edge state.
	EdgeShard(t core.EdgeTuple, n int) int
	// EntityLocal reports whether every entity's full state list lands
	// on a single shard (and edge endpoints are mirrored there), which
	// is what enables shard-side zoom evaluation.
	EntityLocal() bool
}

// VertexCut shards edges with a graphx partition strategy and masters
// each vertex by a 1D hash of its id. Entity state lists stay local.
type VertexCut struct {
	// Edges places edge states; nil selects EdgePartition2D.
	Edges graphx.PartitionStrategy
}

func (s VertexCut) edges() graphx.PartitionStrategy {
	if s.Edges == nil {
		return graphx.EdgePartition2D{}
	}
	return s.Edges
}

// Name implements Strategy.
func (s VertexCut) Name() string { return s.edges().String() }

// VertexShard implements Strategy: the 1D hash of the vertex id, so a
// vertex's master is independent of its states.
func (VertexCut) VertexShard(t core.VertexTuple, n int) int {
	return graphx.EdgePartition1D{}.Partition(t.ID, 0, n)
}

// EdgeShard implements Strategy.
func (s VertexCut) EdgeShard(t core.EdgeTuple, n int) int {
	return s.edges().Partition(t.Src, t.Dst, n)
}

// EntityLocal implements Strategy.
func (VertexCut) EntityLocal() bool { return true }

// TimeRange slices the graph lifetime into contiguous ranges and
// assigns whole states by the range containing their start time. The
// split is lossless (no clipping at slice boundaries — a state may
// extend past its slice), so entities span shards and all queries merge
// at the coordinator; range-restricted chains prune non-overlapping
// shards instead.
type TimeRange struct {
	// Bounds are the n-1 ascending cut points between the n slices.
	// Empty bounds are derived from the data at Split time.
	Bounds []temporal.Time
}

// TimeRangeName is TimeRange's manifest name.
const TimeRangeName = "TimeRange"

// Name implements Strategy.
func (TimeRange) Name() string { return TimeRangeName }

// slice returns the index of the range containing t.
func (s TimeRange) slice(t temporal.Time, n int) int {
	i := sort.Search(len(s.Bounds), func(i int) bool { return t < s.Bounds[i] })
	if i >= n {
		i = n - 1
	}
	return i
}

// VertexShard implements Strategy.
func (s TimeRange) VertexShard(t core.VertexTuple, n int) int {
	return s.slice(t.Interval.Start, n)
}

// EdgeShard implements Strategy.
func (s TimeRange) EdgeShard(t core.EdgeTuple, n int) int {
	return s.slice(t.Interval.Start, n)
}

// EntityLocal implements Strategy.
func (TimeRange) EntityLocal() bool { return false }

// ParseStrategy maps a wire/manifest name to a Strategy. Empty selects
// the default vertex cut (EdgePartition2D). TimeRange bounds come from
// the manifest (when opening a split directory) or are derived from the
// data (when splitting).
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "", "EdgePartition2D", "2d":
		return VertexCut{Edges: graphx.EdgePartition2D{}}, nil
	case "EdgePartition1D", "1d":
		return VertexCut{Edges: graphx.EdgePartition1D{}}, nil
	case "RandomVertexCut", "random":
		return VertexCut{Edges: graphx.RandomVertexCut{}}, nil
	case TimeRangeName, "timerange", "time-range":
		return TimeRange{}, nil
	default:
		return nil, fmt.Errorf("shard: unknown strategy %q (want EdgePartition2D|EdgePartition1D|RandomVertexCut|TimeRange)", name)
	}
}

// Part is one shard's slice of a split graph: the vertex states it
// masters, the full state lists of vertices mirrored for its local
// edges (EntityLocal strategies only), and the edge states it owns.
type Part struct {
	Masters []core.VertexTuple
	Mirrors []core.VertexTuple
	Edges   []core.EdgeTuple
}

// Split partitions the given states into n parts under the strategy.
// The returned strategy is the bound form (TimeRange with derived
// bounds); pass it, not the input, to the coordinator. The split is
// lossless: every input state appears in exactly one part's
// Masters/Edges (Mirrors are replicas).
func Split(vs []core.VertexTuple, es []core.EdgeTuple, st Strategy, n int) ([]Part, Strategy) {
	if n < 1 {
		n = 1
	}
	if tr, ok := st.(TimeRange); ok && len(tr.Bounds) == 0 {
		st = TimeRange{Bounds: deriveBounds(vs, es, n)}
	}
	parts := make([]Part, n)
	for _, v := range vs {
		k := st.VertexShard(v, n)
		parts[k].Masters = append(parts[k].Masters, v)
	}
	for _, e := range es {
		k := st.EdgeShard(e, n)
		parts[k].Edges = append(parts[k].Edges, e)
	}
	if st.EntityLocal() {
		// Mirror the full state list of every foreign endpoint: the
		// redirect kernel joins an edge against all states of both
		// endpoints, so partial mirrors would drop output states.
		byID := make(map[core.VertexID][]core.VertexTuple)
		for _, v := range vs {
			byID[v.ID] = append(byID[v.ID], v)
		}
		for k := range parts {
			seen := make(map[core.VertexID]bool)
			for _, e := range parts[k].Edges {
				for _, id := range [2]core.VertexID{e.Src, e.Dst} {
					if seen[id] {
						continue
					}
					seen[id] = true
					states := byID[id]
					if len(states) == 0 || st.VertexShard(states[0], n) == k {
						continue
					}
					parts[k].Mirrors = append(parts[k].Mirrors, states...)
				}
			}
		}
	}
	return parts, st
}

// deriveBounds cuts the states' lifetime into n equal slices.
func deriveBounds(vs []core.VertexTuple, es []core.EdgeTuple, n int) []temporal.Time {
	life := temporal.Empty
	for _, v := range vs {
		life = temporal.Span(life, v.Interval)
	}
	for _, e := range es {
		life = temporal.Span(life, e.Interval)
	}
	bounds := make([]temporal.Time, 0, n-1)
	if life.IsEmpty() || n < 2 {
		return bounds
	}
	span := life.Duration()
	for i := 1; i < n; i++ {
		bounds = append(bounds, life.Start+temporal.Time(int64(span)*int64(i)/int64(n)))
	}
	return bounds
}

// Manifest is the shards.json descriptor of a split directory.
type Manifest struct {
	Version  int     `json:"version"`
	Shards   int     `json:"shards"`
	Strategy string  `json:"strategy"`
	Bounds   []int64 `json:"bounds,omitempty"`
}

// strategyOf reconstructs the manifest's bound Strategy.
func (m Manifest) strategyOf() (Strategy, error) {
	st, err := ParseStrategy(m.Strategy)
	if err != nil {
		return nil, err
	}
	if _, ok := st.(TimeRange); ok {
		bounds := make([]temporal.Time, len(m.Bounds))
		for i, b := range m.Bounds {
			bounds[i] = temporal.Time(b)
		}
		st = TimeRange{Bounds: bounds}
	}
	return st, nil
}

// shardDir returns the directory of shard i under a split root.
func shardDir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%03d", i))
}

// baseDir and mirrorDir are a shard's two storage directories: base
// holds masters plus owned edges (and the shard's append WAL), mirror
// holds replicated foreign endpoint states (and the mirror WAL).
func baseDir(shard string) string   { return filepath.Join(shard, "base") }
func mirrorDir(shard string) string { return filepath.Join(shard, "mirror") }

// IsSharded reports whether dir is a split directory (has a shard
// manifest).
func IsSharded(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, ManifestFile))
	return err == nil
}

// ReadManifest reads and validates a split directory's manifest.
func ReadManifest(dir string) (Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("shard: manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, fmt.Errorf("shard: manifest: %w", err)
	}
	if m.Shards < 1 {
		return Manifest{}, fmt.Errorf("shard: manifest: want shards >= 1, got %d", m.Shards)
	}
	return m, nil
}

// SaveDir splits the graph's states into n shards under the strategy
// and writes the split directory: shard-NNN/base and shard-NNN/mirror
// storage directories (each a complete storage.SaveGraph layout, so the
// shard WALs replay on load) plus the shards.json manifest, written
// last so a torn split is not mistaken for a complete one.
func SaveDir(ctx *dataflow.Context, dir string, vs []core.VertexTuple, es []core.EdgeTuple, st Strategy, n int, opts storage.SaveOptions) error {
	parts, bound := Split(vs, es, st, n)
	for i, p := range parts {
		sd := shardDir(dir, i)
		if err := os.MkdirAll(sd, 0o755); err != nil {
			return fmt.Errorf("shard: %w", err)
		}
		if err := storage.SaveGraph(baseDir(sd), core.NewVE(ctx, p.Masters, p.Edges), opts); err != nil {
			return fmt.Errorf("shard %d: base: %w", i, err)
		}
		if err := storage.SaveGraph(mirrorDir(sd), core.NewVE(ctx, p.Mirrors, nil), opts); err != nil {
			return fmt.Errorf("shard %d: mirror: %w", i, err)
		}
	}
	m := Manifest{Version: 1, Shards: n, Strategy: bound.Name()}
	if tr, ok := bound.(TimeRange); ok {
		for _, b := range tr.Bounds {
			m.Bounds = append(m.Bounds, int64(b))
		}
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, ManifestFile+".tmp")
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("shard: manifest: %w", err)
	}
	return os.Rename(tmp, filepath.Join(dir, ManifestFile))
}
