package shard

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/obs"
	"repro/internal/props"
	"repro/internal/storage/wal"
	"repro/internal/temporal"
)

// Scatter instruments (registered on the default obs registry, like
// every other subsystem's).
var (
	mScatters      = obs.Default().Counter("shard.scatters")
	mLegs          = obs.Default().Counter("shard.legs")
	mLegFailures   = obs.Default().Counter("shard.leg_failures")
	mPartialMerges = obs.Default().Counter("shard.partial_merges")
	mFallbacks     = obs.Default().Counter("shard.fallbacks")
	mGroupsMerged  = obs.Default().Counter("shard.groups_merged")
	mLegLatency    = obs.Default().Histogram("shard.leg_latency")
)

// legBudgetFraction is how much of the request's remaining deadline the
// scatter legs get; the rest is reserved for the coordinator merge.
const legBudgetFraction = 0.9

// Options configures a Coordinator and its workers.
type Options struct {
	// Parallelism sizes each worker's dataflow context.
	Parallelism int
	// ScanParallelism sizes each worker's storage scan pool.
	ScanParallelism int
	// CacheBytes bounds each worker's partial-result cache.
	CacheBytes int64
	// Partial enables degraded partial-result merges when a subset of
	// shards fails; when false the first leg failure cancels siblings
	// and the scatter reports a typed *dataflow.JobError.
	Partial bool
	// WALOpts configures the per-shard write-ahead logs.
	WALOpts wal.Options
	// OpenWAL opens the shard WALs for appends (disk-backed only).
	OpenWAL bool
	// FaultHook, when non-nil, is invoked at fault sites (site
	// "shard.leg" at the start of every scatter leg) and its error fails
	// the leg — the chaos-testing seam, mirroring internal/faults.
	FaultHook func(site string) error
}

// Coordinator owns N in-process shard workers and serves scatter-gather
// queries over them. Loads and appends are serialised; queries run
// concurrently.
type Coordinator struct {
	n       int
	st      Strategy
	partial bool
	hook    func(site string) error
	workers []*Worker

	mu sync.Mutex // serialises Ensure and Append
}

// Open builds a Coordinator over a split directory written by SaveDir.
// Workers load lazily on the first Ensure.
func Open(dir string, opts Options) (*Coordinator, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	st, err := m.strategyOf()
	if err != nil {
		return nil, err
	}
	c := &Coordinator{n: m.Shards, st: st, partial: opts.Partial, hook: opts.FaultHook}
	for i := 0; i < m.Shards; i++ {
		c.workers = append(c.workers, newDiskWorker(i, shardDir(dir, i), opts))
	}
	return c, nil
}

// NewFromStates splits the given states in memory and builds a loaded
// Coordinator over them — the serving layer's path for flat (unsplit)
// graph directories run with -shards > 1.
func NewFromStates(vs []core.VertexTuple, es []core.EdgeTuple, st Strategy, n int, opts Options) *Coordinator {
	parts, bound := Split(vs, es, st, n)
	c := &Coordinator{n: len(parts), st: bound, partial: opts.Partial, hook: opts.FaultHook}
	for i, p := range parts {
		c.workers = append(c.workers, newMemWorker(i, p, opts))
	}
	return c
}

// N returns the shard count.
func (c *Coordinator) N() int { return c.n }

// Strategy returns the coordinator's bound placement strategy.
func (c *Coordinator) Strategy() Strategy { return c.st }

// Close releases every worker's dataflow context and logs.
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		w.close()
	}
}

// Ensure loads (or reloads, when their on-disk stamps changed) all
// disk-backed workers and returns the combined base stamp identifying
// the coordinator's committed on-disk state. Like the unsharded base
// stamp, it tracks committed epochs only: live appends advance the
// workers in place (and invalidate via their version-keyed caches and
// the serving layer's tag versions) without changing it. In-memory
// coordinators are always current.
func (c *Coordinator) Ensure(ctx context.Context) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Shards load concurrently — each worker owns its storage directory
	// and scan pool, so a cold N-shard ensure scans N ways in parallel.
	errs := make([]error, c.n)
	var wg sync.WaitGroup
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			errs[i] = w.ensure(ctx)
		}(i, w)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return "", err
	}
	stamps := make([]string, 0, c.n)
	for _, w := range c.workers {
		w.mu.RLock()
		stamps = append(stamps, w.stamp)
		w.mu.RUnlock()
	}
	return strings.Join(stamps, ","), nil
}

// Query is one operator chain, decomposed by the serving layer for
// scatter dispatch: when the chain's first step is an aZoom, a wZoom or
// a range restriction, the corresponding field carries it so the
// coordinator can evaluate it shard-side; First holds the first step's
// unsharded closure for the gather fallback (nil when Clip covers it),
// and Tail holds the remaining steps, always applied at the coordinator
// after the merge.
type Query struct {
	// Canon is the canonical form of the first step, used in per-shard
	// partial-result cache keys.
	Canon string
	// Rep is the graph's serving representation — the representation
	// the merged states are converted to before First/Tail run.
	Rep core.Representation
	// AZ/WZ are set when the first step is the respective zoom.
	AZ *core.AZoomSpec
	WZ *core.WZoomSpec
	// Clip is set when the first step is a range restriction; the clip
	// is applied shard-side and non-overlapping shards are pruned.
	Clip temporal.Interval
	// First applies the first step unsharded (fallback path); nil when
	// Clip represents it.
	First func(core.TGraph) (core.TGraph, error)
	// Tail applies the remaining steps in order.
	Tail []func(core.TGraph) (core.TGraph, error)
}

// Stats describes how a scatter went, for response headers and logs.
type Stats struct {
	// N and OK are the shard count and the number of shards whose
	// contribution is reflected in the result (pruned shards count: they
	// contributed everything they had, namely nothing).
	N, OK int
	// Partial marks a degraded merge (OK < N with Partial mode on).
	Partial bool
	// Fallback marks the gather-states fallback path.
	Fallback bool
}

// Header renders the Stats as the X-TGraph-Shards header value, "k/n".
func (s Stats) Header() string { return fmt.Sprintf("%d/%d", s.OK, s.N) }

// repFast reports whether the representation is eligible for shard-side
// zoom evaluation. VE and OG coalesce per entity before zooming, which
// is exactly what the workers' normalized histories reproduce; RG
// windows over raw fragments and OGC is topology-only, so both take the
// (still byte-identical) gather fallback.
func repFast(r core.Representation) bool { return r == core.RepVE || r == core.RepOG }

// specUsesChangePoints reports whether the window spec derives its
// relation from the graph's change points (the probe phase then also
// collects per-shard state boundaries). Same detection as the
// incremental views: the optional UsesChangePoints method, assumed true
// for unknown specs.
func specUsesChangePoints(w temporal.WindowSpec) bool {
	type changePointUser interface{ UsesChangePoints() bool }
	if u, ok := w.(changePointUser); ok {
		return u.UsesChangePoints()
	}
	return true
}

// hasCustomAgg reports whether the aggregate spec carries a user
// combine function. Custom combines are merged at the coordinator only
// via the fallback: the spec documents them commutative/associative,
// but the unsharded batch path is the semantic reference and the
// fallback reproduces it exactly.
func hasCustomAgg(s props.AggSpec) bool {
	for _, f := range s.Fields {
		if f.Kind == props.AggCustom {
			return true
		}
	}
	return false
}

// Run scatters the query to the shard workers, merges the partial
// results with the zoomstage kernels and applies the chain's tail. The
// returned graph is byte-identical (after the serving layer's canonical
// encode) to running the same chain over the unsharded graph; Stats
// reports the scatter shape. On failure the error is (or wraps) a
// *dataflow.JobError with stage "shard.scatter" naming every failed
// shard.
func (c *Coordinator) Run(ctx context.Context, dctx *dataflow.Context, q Query) (core.TGraph, Stats, error) {
	mScatters.Add(1)
	st := Stats{N: c.n}
	lctx, cancel := legContext(ctx)
	defer cancel()
	switch {
	case q.AZ != nil && c.st.EntityLocal() && repFast(q.Rep) && !hasCustomAgg(q.AZ.Agg):
		g, err := c.runAZoom(lctx, dctx, q, &st)
		return g, st, err
	case q.WZ != nil && c.st.EntityLocal() && repFast(q.Rep):
		g, err := c.runWZoom(lctx, dctx, q, &st)
		return g, st, err
	default:
		g, err := c.runGather(lctx, dctx, q, &st)
		return g, st, err
	}
}

// legContext derives the scatter legs' deadline from the request
// budget: legBudgetFraction of the remaining time, reserving the rest
// for the merge and encode.
func legContext(ctx context.Context) (context.Context, context.CancelFunc) {
	dl, ok := ctx.Deadline()
	if !ok {
		return context.WithCancel(ctx)
	}
	rem := time.Until(dl)
	if rem <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithDeadline(ctx, time.Now().Add(time.Duration(float64(rem)*legBudgetFraction)))
}

// scatter fans leg out to every included worker concurrently, one
// span-instrumented goroutine per shard. Excluded (pruned) workers
// yield a nil result and count as succeeded. Without Partial mode the
// first failure cancels the sibling legs; legs that die of that
// sibling cancellation are reported as skipped, not failed. The ok
// count is the number of workers whose contribution the caller may
// merge.
func (c *Coordinator) scatter(ctx context.Context, include func(int, *Worker) bool, leg func(context.Context, *Worker) (any, error)) ([]any, int, error) {
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]any, c.n)
	errs := make([]error, c.n)
	ran := make([]bool, c.n)
	var wg sync.WaitGroup
	for i, w := range c.workers {
		if include != nil && !include(i, w) {
			continue
		}
		ran[i] = true
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			span := obs.StartSpan("shard.leg")
			defer span.End()
			start := time.Now()
			defer func() {
				mLegLatency.Observe(time.Since(start))
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("shard %d: leg panic: %v", i, r)
				}
				if errs[i] != nil && !c.partial {
					cancel()
				}
			}()
			mLegs.Add(1)
			if c.hook != nil {
				if err := c.hook("shard.leg"); err != nil {
					errs[i] = err
					return
				}
			}
			results[i], errs[i] = leg(ictx, w)
		}(i, w)
	}
	wg.Wait()

	ok := 0
	var tasks []*dataflow.TaskError
	skipped := 0
	siblingCancel := ctx.Err() == nil // ictx cancellations came from a failed sibling
	for i := range results {
		switch {
		case errs[i] == nil:
			ok++
		case siblingCancel && errors.Is(errs[i], context.Canceled):
			skipped++
		default:
			mLegFailures.Add(1)
			tasks = append(tasks, &dataflow.TaskError{
				Stage:     "shard.scatter",
				Partition: i,
				Attempts:  1,
				Err:       errs[i],
			})
		}
	}
	if len(tasks) == 0 && skipped == 0 {
		return results, ok, nil
	}
	je := &dataflow.JobError{Stage: "shard.scatter", Tasks: tasks, TasksSkipped: skipped}
	if err := ctx.Err(); err != nil {
		je.Cancel = err
	}
	return results, ok, je
}

// degrade resolves a scatter's outcome: full success passes through, a
// failure with Partial mode and at least one survivor switches the
// request to degraded mode, anything else propagates the typed error.
func (c *Coordinator) degrade(st *Stats, ok int, err error) error {
	st.OK = ok
	if err == nil {
		return nil
	}
	if !c.partial || ok == 0 {
		return err
	}
	st.Partial = true
	mPartialMerges.Add(1)
	return nil
}

// runAZoom is the shard-side aZoom path: each worker contributes its
// masters' Skolem-group states and its local edges' redirected outputs;
// the coordinator re-reduces each group — now complete — with
// AZoomGroup, the exact batch kernel.
func (c *Coordinator) runAZoom(ctx context.Context, dctx *dataflow.Context, q Query, st *Stats) (core.TGraph, error) {
	spec := *q.AZ
	esk := spec.BoundEdgeSkolem()
	res, ok, serr := c.scatter(ctx, nil, func(ctx context.Context, w *Worker) (any, error) {
		return w.azoomPartial(ctx, &spec, esk, q.Canon)
	})
	if err := c.degrade(st, ok, serr); err != nil {
		return nil, err
	}
	groups := make(map[core.VertexID][]core.AZState)
	var es []core.EdgeTuple
	for _, r := range res {
		if r == nil {
			continue
		}
		p := r.(*azPartial)
		for id, s := range p.Groups {
			groups[id] = append(groups[id], s...)
		}
		es = append(es, p.Edges...)
	}
	agg := spec.Agg.Bind()
	var vs []core.VertexTuple
	for id, s := range groups {
		vs = append(vs, core.AZoomGroup(spec, agg, id, s)...)
	}
	mGroupsMerged.Add(int64(len(groups)))
	return c.finish(dctx, q, vs, es, false)
}

// runWZoom is the two-phase shard-side wZoom path. Phase one probes
// every shard for its data span (and, for change-based window specs,
// its normalized state boundaries); the coordinator merges them into
// the global lifetime and change-point set — exact, because boundary
// sets union losslessly and the change-window spec filters to the
// lifetime interior itself — and derives the window relation once.
// Phase two scatters that relation for per-entity windowed reduction;
// the dangling-edge semijoin runs at the coordinator against the merged
// (global) vertex outputs.
func (c *Coordinator) runWZoom(ctx context.Context, dctx *dataflow.Context, q Query, st *Stats) (core.TGraph, error) {
	spec := *q.WZ
	cs := specUsesChangePoints(spec.Window)
	probes, _, perr := c.scatter(ctx, nil, func(_ context.Context, w *Worker) (any, error) {
		return w.wzoomProbe(cs), nil
	})
	alive := func(i int) bool { return probes[i] != nil }

	lifetime := temporal.Empty
	var bounds []temporal.Time
	for i := range probes {
		if !alive(i) {
			continue
		}
		p := probes[i].(wzProbe)
		lifetime = temporal.Span(lifetime, p.Lifetime)
		bounds = append(bounds, p.Bounds...)
	}
	slices.Sort(bounds)
	bounds = slices.Compact(bounds)
	windows := spec.Window.Windows(lifetime, bounds)

	vres, eres := spec.VResolve.Bind(), spec.EResolve.Bind()
	parts, _, serr := c.scatter(ctx, func(i int, _ *Worker) bool { return alive(i) }, func(ctx context.Context, w *Worker) (any, error) {
		return w.wzoomPartial(ctx, &spec, vres, eres, windows, q.Canon)
	})
	ok := 0
	for i := range parts {
		if alive(i) && parts[i] != nil {
			ok++
		}
	}
	if serr == nil {
		serr = perr
	}
	if err := c.degrade(st, ok, serr); err != nil {
		return nil, err
	}

	vOut := make(map[core.VertexID][]core.HistoryItem)
	eOut := make(map[edgeKey][]core.HistoryItem)
	for i := range parts {
		if !alive(i) || parts[i] == nil {
			continue
		}
		p := parts[i].(*wzPartial)
		for id, h := range p.V { // masters are disjoint across shards
			vOut[id] = h
		}
		for k, h := range p.E { // so are edge owners
			eOut[k] = h
		}
	}
	var vs []core.VertexTuple
	for id, out := range vOut {
		for _, it := range out {
			vs = append(vs, core.VertexTuple{ID: id, Interval: it.Interval, Props: it.Props})
		}
	}
	dangling := spec.VQuant.MoreRestrictiveThan(spec.EQuant)
	covered := func(id core.VertexID, iv temporal.Interval) bool {
		for _, it := range vOut[id] {
			if it.Interval.Covers(iv) {
				return true
			}
		}
		return false
	}
	var es []core.EdgeTuple
	for k, out := range eOut {
		for _, it := range out {
			if dangling && (!covered(k.Src, it.Interval) || !covered(k.Dst, it.Interval)) {
				continue
			}
			es = append(es, core.EdgeTuple{ID: k.ID, Src: k.Src, Dst: k.Dst, Interval: it.Interval, Props: it.Props})
		}
	}
	return c.finish(dctx, q, vs, es, false)
}

// runGather is the fallback for every other chain shape: collect the
// shards' raw base states (masters and owned edges — the lossless
// multiset), clipped and pruned by the leading range restriction when
// present, and run the unsharded operator chain over the merged graph.
func (c *Coordinator) runGather(ctx context.Context, dctx *dataflow.Context, q Query, st *Stats) (core.TGraph, error) {
	mFallbacks.Add(1)
	st.Fallback = true
	var include func(int, *Worker) bool
	if !q.Clip.IsEmpty() {
		include = func(_ int, w *Worker) bool { return w.Span().Overlaps(q.Clip) }
	}
	res, ok, serr := c.scatter(ctx, include, func(ctx context.Context, w *Worker) (any, error) {
		return w.states(ctx, q.Clip)
	})
	if err := c.degrade(st, ok, serr); err != nil {
		return nil, err
	}
	var vs []core.VertexTuple
	var es []core.EdgeTuple
	for _, r := range res {
		if r == nil {
			continue
		}
		p := r.(*statesPartial)
		vs = append(vs, p.V...)
		es = append(es, p.E...)
	}
	g, err := c.mergeGraph(dctx, q, vs, es)
	if err != nil {
		return nil, err
	}
	if q.First != nil {
		if g, err = q.First(g); err != nil {
			return nil, err
		}
	}
	return c.tail(q, g)
}

// finish materialises merged zoom outputs in the serving representation
// and applies the chain's tail steps.
func (c *Coordinator) finish(dctx *dataflow.Context, q Query, vs []core.VertexTuple, es []core.EdgeTuple, _ bool) (core.TGraph, error) {
	g, err := c.mergeGraph(dctx, q, vs, es)
	if err != nil {
		return nil, err
	}
	return c.tail(q, g)
}

// mergeGraph builds the merged VE relation and converts it to the
// serving representation — the same construction the serving layer's
// view encode uses, so the downstream encode canonicalises identically.
func (c *Coordinator) mergeGraph(dctx *dataflow.Context, q Query, vs []core.VertexTuple, es []core.EdgeTuple) (core.TGraph, error) {
	return core.Convert(core.NewVE(dctx, vs, es), q.Rep)
}

// tail applies the chain's remaining steps.
func (c *Coordinator) tail(q Query, g core.TGraph) (core.TGraph, error) {
	var err error
	for _, f := range q.Tail {
		if g, err = f(g); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Append routes WAL deltas to their owning shards, preserving the
// serving layer's durability order (per-shard log write before the
// in-memory mutation). Vertex deltas go to the vertex's master shard
// and are replicated to every shard holding an edge that references the
// vertex; edge deltas go to the edge's owner, after seeding mirrors for
// any foreign endpoint the owner has not seen yet (so the redirect
// kernel keeps joining against full endpoint state lists).
func (c *Coordinator) Append(deltas []wal.Delta) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range deltas {
		switch d.Kind {
		case wal.KindVertex:
			t, _ := d.VertexTuple()
			owner := c.st.VertexShard(t, c.n)
			if err := c.workers[owner].appendMaster(d); err != nil {
				return err
			}
			if !c.st.EntityLocal() {
				continue
			}
			for i, w := range c.workers {
				if i == owner || !w.wantsMirror(t.ID) {
					continue
				}
				if err := w.appendMirror(d); err != nil {
					return err
				}
			}
		case wal.KindEdge:
			t, _ := d.EdgeTuple()
			owner := c.st.EdgeShard(t, c.n)
			if c.st.EntityLocal() {
				for _, id := range [2]core.VertexID{t.Src, t.Dst} {
					master := c.st.VertexShard(core.VertexTuple{ID: id}, c.n)
					if master == owner || c.workers[owner].hasVertex(id) {
						continue
					}
					h := c.workers[master].masterStates(id)
					seeds := make([]wal.Delta, 0, len(h))
					for _, it := range h {
						seeds = append(seeds, wal.Delta{
							Kind:     wal.KindVertex,
							ID:       int64(id),
							Interval: it.Interval,
							Props:    it.Props,
						})
					}
					if len(seeds) > 0 {
						if err := c.workers[owner].appendMirror(seeds...); err != nil {
							return err
						}
					} else {
						// Nothing to seed yet, but remember the endpoint so a
						// later vertex append replicates here.
						c.workers[owner].noteEndpoint(id)
					}
				}
			}
			if err := c.workers[owner].appendEdge(d); err != nil {
				return err
			}
		default:
			return fmt.Errorf("shard: append: unknown delta kind %v", d.Kind)
		}
	}
	return nil
}
