package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/graphx"
	"repro/internal/props"
	"repro/internal/storage"
	"repro/internal/storage/wal"
	"repro/internal/temporal"
)

// genGraph builds a deterministic temporal graph: vertices carrying a
// dept property (the aZoom grouping key) and a score, edges between
// random endpoints, both with 1-3 fragmented states — fragmentation
// included on purpose, the merges must be insensitive to it.
func genGraph(nv, ne int) ([]core.VertexTuple, []core.EdgeTuple) {
	state := uint64(0x9e3779b97f4a7c15)
	next := func(n uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state % n
	}
	var vs []core.VertexTuple
	for i := 0; i < nv; i++ {
		id := core.VertexID(i + 1)
		dept := fmt.Sprintf("d%d", next(5))
		states := int(next(3)) + 1
		for s := 0; s < states; s++ {
			start := temporal.Time(next(90))
			end := start + temporal.Time(next(10)) + 1
			vs = append(vs, core.VertexTuple{
				ID:       id,
				Interval: temporal.Interval{Start: start, End: end},
				Props:    props.New("dept", dept, "score", fmt.Sprint(next(100))),
			})
		}
	}
	var es []core.EdgeTuple
	for i := 0; i < ne; i++ {
		src := core.VertexID(next(uint64(nv)) + 1)
		dst := core.VertexID(next(uint64(nv)) + 1)
		states := int(next(2)) + 1
		for s := 0; s < states; s++ {
			start := temporal.Time(next(90))
			end := start + temporal.Time(next(10)) + 1
			es = append(es, core.EdgeTuple{
				ID: core.EdgeID(i + 1), Src: src, Dst: dst,
				Interval: temporal.Interval{Start: start, End: end},
				Props:    props.New("w", fmt.Sprint(next(9))),
			})
		}
	}
	return vs, es
}

// canon renders a graph in the serving layer's canonical form:
// coalesced states, sorted, plus the lifetime — the byte-identity
// equivalence the coordinator guarantees.
func canon(t *testing.T, g core.TGraph) string {
	t.Helper()
	c := g.Coalesce()
	vs := c.VertexStates()
	es := c.EdgeStates()
	sort.Slice(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		if a.Interval.Start != b.Interval.Start {
			return a.Interval.Start < b.Interval.Start
		}
		return a.Interval.End < b.Interval.End
	})
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.Interval.Start != b.Interval.Start {
			return a.Interval.Start < b.Interval.Start
		}
		return a.Interval.End < b.Interval.End
	})
	out := fmt.Sprintf("life=%v\n", c.Lifetime())
	for _, v := range vs {
		out += fmt.Sprintf("v %d %v %v\n", v.ID, v.Interval, v.Props)
	}
	for _, e := range es {
		out += fmt.Sprintf("e %d %d->%d %v %v\n", e.ID, e.Src, e.Dst, e.Interval, e.Props)
	}
	return out
}

func azSpec() core.AZoomSpec {
	return core.GroupByProperty("dept", "group",
		props.Count("members"), props.Sum("total", "score"), props.Min("lo", "score"))
}

func wzSpec(window temporal.WindowSpec, dangling bool) core.WZoomSpec {
	s := core.WZoomSpec{Window: window}
	if dangling {
		s.VQuant = temporal.All()
		s.EQuant = temporal.Exists()
	}
	return s
}

var allStrategies = []Strategy{
	VertexCut{},
	VertexCut{Edges: graphx.RandomVertexCut{}},
	TimeRange{},
}

// TestSplitLossless asserts every input state lands in exactly one
// part's Masters/Edges for every strategy and shard count.
func TestSplitLossless(t *testing.T) {
	vs, es := genGraph(60, 120)
	for _, st := range allStrategies {
		for _, n := range []int{1, 2, 3, 4, 7} {
			parts, _ := Split(vs, es, st, n)
			nv, ne := 0, 0
			for _, p := range parts {
				nv += len(p.Masters)
				ne += len(p.Edges)
			}
			if nv != len(vs) || ne != len(es) {
				t.Fatalf("%s n=%d: split not lossless: %d/%d vertices, %d/%d edges",
					st.Name(), n, nv, len(vs), ne, len(es))
			}
		}
	}
}

// runBoth runs the same query sharded and unsharded and compares the
// canonical forms.
func runBoth(t *testing.T, name string, vs []core.VertexTuple, es []core.EdgeTuple, st Strategy, n int, q Query, direct func(core.TGraph) (core.TGraph, error)) {
	t.Helper()
	dctx := dataflow.NewContext(dataflow.WithParallelism(2))
	defer dctx.Close()
	want, err := direct(core.NewVE(dctx, vs, es))
	if err != nil {
		t.Fatalf("%s: direct: %v", name, err)
	}
	c := NewFromStates(vs, es, st, n, Options{Parallelism: 2})
	defer c.Close()
	got, stats, err := c.Run(context.Background(), dctx, q)
	if err != nil {
		t.Fatalf("%s: sharded: %v", name, err)
	}
	if stats.N != n || stats.OK != n || stats.Partial {
		t.Fatalf("%s: stats = %+v, want full %d/%d", name, stats, n, n)
	}
	if g, w := canon(t, got), canon(t, want); g != w {
		t.Errorf("%s (%s, n=%d): sharded output differs\n--- got ---\n%s--- want ---\n%s", name, st.Name(), n, g, w)
	}
}

// TestAZoomByteIdentity covers the shard-side aZoom path (vertex cuts)
// and the gather fallback (TimeRange) against the batch kernel.
func TestAZoomByteIdentity(t *testing.T) {
	vs, es := genGraph(60, 120)
	spec := azSpec()
	for _, st := range allStrategies {
		for _, n := range []int{1, 2, 4} {
			q := Query{
				Canon: "azoom-test", Rep: core.RepVE, AZ: &spec,
				First: func(g core.TGraph) (core.TGraph, error) { return g.AZoom(spec) },
			}
			runBoth(t, "azoom", vs, es, st, n, q,
				func(g core.TGraph) (core.TGraph, error) { return g.AZoom(spec) })
		}
	}
}

// TestAZoomCustomAggFallsBack asserts custom aggregates skip the
// shard-side reduce but still merge byte-identically via gather.
func TestAZoomCustomAggFallsBack(t *testing.T) {
	vs, es := genGraph(40, 80)
	spec := azSpec()
	spec.Agg.Fields = append(spec.Agg.Fields,
		props.Custom("cat", "dept", func(a, b props.Value) props.Value {
			if a.String() <= b.String() {
				return a
			}
			return b
		}))
	q := Query{
		Canon: "azoom-custom", Rep: core.RepVE, AZ: &spec,
		First: func(g core.TGraph) (core.TGraph, error) { return g.AZoom(spec) },
	}
	dctx := dataflow.NewContext(dataflow.WithParallelism(2))
	defer dctx.Close()
	c := NewFromStates(vs, es, VertexCut{}, 3, Options{Parallelism: 2})
	defer c.Close()
	got, stats, err := c.Run(context.Background(), dctx, q)
	if err != nil {
		t.Fatalf("sharded: %v", err)
	}
	if !stats.Fallback {
		t.Fatalf("custom aggregate did not take the fallback: %+v", stats)
	}
	want, err := core.NewVE(dctx, vs, es).AZoom(spec)
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	if g, w := canon(t, got), canon(t, want); g != w {
		t.Errorf("custom-agg fallback differs\n--- got ---\n%s--- want ---\n%s", g, w)
	}
}

// TestWZoomByteIdentity covers the two-phase wZoom path for unit and
// change-based windows, with and without the dangling-edge semijoin.
func TestWZoomByteIdentity(t *testing.T) {
	vs, es := genGraph(60, 120)
	cases := []struct {
		name string
		spec core.WZoomSpec
	}{
		{"unit", wzSpec(temporal.MustEveryN(10), false)},
		{"unit-dangling", wzSpec(temporal.MustEveryN(7), true)},
		{"changes", wzSpec(temporal.MustEveryNChanges(3), false)},
		{"changes-dangling", wzSpec(temporal.MustEveryNChanges(2), true)},
	}
	for _, tc := range cases {
		spec := tc.spec
		for _, st := range allStrategies {
			for _, n := range []int{1, 2, 4} {
				q := Query{
					Canon: "wzoom-" + tc.name, Rep: core.RepVE, WZ: &spec,
					First: func(g core.TGraph) (core.TGraph, error) { return g.WZoom(spec) },
				}
				runBoth(t, "wzoom/"+tc.name, vs, es, st, n, q,
					func(g core.TGraph) (core.TGraph, error) { return g.WZoom(spec) })
			}
		}
	}
}

// TestRangeGatherPrunes asserts leading range restrictions prune
// non-overlapping shards under TimeRange and still merge exactly.
func TestRangeGatherPrunes(t *testing.T) {
	vs, es := genGraph(60, 120)
	clip := temporal.Interval{Start: 10, End: 30}
	spec := azSpec()
	q := Query{
		Canon: "range-azoom", Rep: core.RepVE, Clip: clip,
		Tail: []func(core.TGraph) (core.TGraph, error){
			func(g core.TGraph) (core.TGraph, error) { return g.AZoom(spec) },
		},
	}
	clipStates := func(g core.TGraph) (core.TGraph, error) {
		var cvs []core.VertexTuple
		for _, v := range g.VertexStates() {
			if v.Interval.Overlaps(clip) {
				v.Interval = v.Interval.Intersect(clip)
				cvs = append(cvs, v)
			}
		}
		var ces []core.EdgeTuple
		for _, e := range g.EdgeStates() {
			if e.Interval.Overlaps(clip) {
				e.Interval = e.Interval.Intersect(clip)
				ces = append(ces, e)
			}
		}
		return core.NewVE(g.Context(), cvs, ces).AZoom(spec)
	}
	runBoth(t, "range+azoom", vs, es, TimeRange{}, 4, q, clipStates)
}

// TestSaveDirOpenRoundTrip splits to disk, reopens through the
// manifest, and asserts the disk-backed coordinator answers exactly
// like the in-memory one, WAL machinery included.
func TestSaveDirOpenRoundTrip(t *testing.T) {
	vs, es := genGraph(40, 80)
	dctx := dataflow.NewContext(dataflow.WithParallelism(2))
	defer dctx.Close()
	dir := t.TempDir()
	if err := SaveDir(dctx, dir, vs, es, VertexCut{}, 3, storage.SaveOptions{}); err != nil {
		t.Fatalf("SaveDir: %v", err)
	}
	if !IsSharded(dir) {
		t.Fatal("IsSharded = false after SaveDir")
	}
	c, err := Open(dir, Options{Parallelism: 2, OpenWAL: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()
	stamp, err := c.Ensure(context.Background())
	if err != nil {
		t.Fatalf("Ensure: %v", err)
	}
	if stamp == "" {
		t.Fatal("Ensure returned empty stamp")
	}
	spec := azSpec()
	q := Query{Canon: "disk-azoom", Rep: core.RepVE, AZ: &spec}
	got, _, err := c.Run(context.Background(), dctx, q)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want, err := core.NewVE(dctx, vs, es).AZoom(spec)
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	if g, w := canon(t, got), canon(t, want); g != w {
		t.Errorf("disk-backed output differs\n--- got ---\n%s--- want ---\n%s", g, w)
	}
}

// TestAppendRouting appends vertex and edge deltas (including an edge
// whose foreign endpoint must be mirror-seeded, and a vertex created
// after an edge referencing it) and asserts the sharded result still
// matches the unsharded graph grown by the same deltas.
func TestAppendRouting(t *testing.T) {
	vs, es := genGraph(30, 50)
	c := NewFromStates(vs, es, VertexCut{}, 4, Options{Parallelism: 2})
	defer c.Close()

	deltas := []wal.Delta{
		// New state of an existing vertex.
		{Kind: wal.KindVertex, ID: 3, Interval: temporal.Interval{Start: 95, End: 99}, Props: props.New("dept", "d1", "score", "7")},
		// New edge between far-apart vertices (forces mirror seeding).
		{Kind: wal.KindEdge, ID: 9001, Src: 1, Dst: 29, Interval: temporal.Interval{Start: 50, End: 60}, Props: props.New("w", "3")},
		// Edge referencing a vertex that does not exist yet...
		{Kind: wal.KindEdge, ID: 9002, Src: 2, Dst: 2000, Interval: temporal.Interval{Start: 10, End: 20}, Props: props.New("w", "1")},
		// ...and the vertex arriving afterwards.
		{Kind: wal.KindVertex, ID: 2000, Interval: temporal.Interval{Start: 5, End: 25}, Props: props.New("dept", "d9", "score", "50")},
	}
	if err := c.Append(deltas); err != nil {
		t.Fatalf("Append: %v", err)
	}
	for _, d := range deltas {
		switch d.Kind {
		case wal.KindVertex:
			tp, _ := d.VertexTuple()
			vs = append(vs, tp)
		case wal.KindEdge:
			tp, _ := d.EdgeTuple()
			es = append(es, tp)
		}
	}
	dctx := dataflow.NewContext(dataflow.WithParallelism(2))
	defer dctx.Close()
	spec := azSpec()
	q := Query{Canon: "append-azoom", Rep: core.RepVE, AZ: &spec}
	got, _, err := c.Run(context.Background(), dctx, q)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want, err := core.NewVE(dctx, vs, es).AZoom(spec)
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	if g, w := canon(t, got), canon(t, want); g != w {
		t.Errorf("post-append output differs\n--- got ---\n%s--- want ---\n%s", g, w)
	}
	// And the raw gather must reproduce the grown multiset exactly.
	q2 := Query{Canon: "append-gather", Rep: core.RepVE}
	got2, stats, err := c.Run(context.Background(), dctx, q2)
	if err != nil {
		t.Fatalf("gather: %v", err)
	}
	if !stats.Fallback {
		t.Fatalf("plain gather not marked fallback: %+v", stats)
	}
	if g, w := canon(t, got2), canon(t, core.NewVE(dctx, vs, es)); g != w {
		t.Errorf("post-append gather differs\n--- got ---\n%s--- want ---\n%s", g, w)
	}
}

// TestChaosPartialFailure fault-injects one shard leg and asserts both
// failure modes: fail-fast mode surfaces a typed *dataflow.JobError
// naming the failed shard, and partial mode degrades to a k/n merge.
func TestChaosPartialFailure(t *testing.T) {
	vs, es := genGraph(40, 80)
	spec := azSpec()
	q := Query{Canon: "chaos-azoom", Rep: core.RepVE, AZ: &spec}
	boom := errors.New("injected shard fault")
	hookOnce := func() func(string) error {
		var mu sync.Mutex
		fired := false
		return func(site string) error {
			mu.Lock()
			defer mu.Unlock()
			if site == "shard.leg" && !fired {
				fired = true
				return boom
			}
			return nil
		}
	}

	t.Run("fail-fast", func(t *testing.T) {
		dctx := dataflow.NewContext(dataflow.WithParallelism(2))
		defer dctx.Close()
		c := NewFromStates(vs, es, VertexCut{}, 4, Options{Parallelism: 2, FaultHook: hookOnce()})
		defer c.Close()
		_, _, err := c.Run(context.Background(), dctx, q)
		var je *dataflow.JobError
		if !errors.As(err, &je) {
			t.Fatalf("want *dataflow.JobError, got %v", err)
		}
		if je.Stage != "shard.scatter" {
			t.Errorf("stage = %q, want shard.scatter", je.Stage)
		}
		if len(je.FailedPartitions()) != 1 {
			t.Errorf("failed partitions = %v, want exactly one", je.FailedPartitions())
		}
		if !errors.Is(err, boom) {
			t.Errorf("JobError does not unwrap to the injected fault: %v", err)
		}
	})

	t.Run("partial", func(t *testing.T) {
		dctx := dataflow.NewContext(dataflow.WithParallelism(2))
		defer dctx.Close()
		c := NewFromStates(vs, es, VertexCut{}, 4, Options{Parallelism: 2, Partial: true, FaultHook: hookOnce()})
		defer c.Close()
		g, stats, err := c.Run(context.Background(), dctx, q)
		if err != nil {
			t.Fatalf("partial mode should degrade, got %v", err)
		}
		if !stats.Partial || stats.OK != 3 || stats.N != 4 {
			t.Fatalf("stats = %+v, want partial 3/4", stats)
		}
		if stats.Header() != "3/4" {
			t.Errorf("header = %q, want 3/4", stats.Header())
		}
		if g == nil || len(g.VertexStates()) == 0 {
			t.Error("degraded merge returned no data")
		}
	})
}

// TestLegDeadline asserts the per-leg deadline derives from the request
// budget: a context that is already past its deadline fails the scatter
// with a cancellation-carrying JobError.
func TestLegDeadline(t *testing.T) {
	vs, es := genGraph(20, 30)
	dctx := dataflow.NewContext(dataflow.WithParallelism(2))
	defer dctx.Close()
	c := NewFromStates(vs, es, VertexCut{}, 2, Options{Parallelism: 2})
	defer c.Close()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	spec := azSpec()
	_, _, err := c.Run(ctx, dctx, Query{Canon: "deadline", Rep: core.RepVE, AZ: &spec})
	if err == nil {
		t.Fatal("expired deadline did not fail the scatter")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error does not carry the deadline cause: %v", err)
	}
}
