package props

import (
	"fmt"
	"sort"
	"strings"
)

// TypeKey is the reserved property label that every TGraph entity must
// assign a value to whenever it exists (Definition 2.1).
const TypeKey = "type"

// Props is a set of key-value pairs representing an assignment of
// values to the properties of a node or edge. A nil map is a valid
// empty property set.
type Props map[string]Value

// New builds a Props from alternating key, value pairs. It panics on an
// odd number of arguments; it is intended for literals in tests and
// examples.
func New(pairs ...any) Props {
	if len(pairs)%2 != 0 {
		panic("props.New: odd number of arguments")
	}
	p := make(Props, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		key, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("props.New: key %v is not a string", pairs[i]))
		}
		switch v := pairs[i+1].(type) {
		case Value:
			p[key] = v
		case string:
			p[key] = StringVal(v)
		case int:
			p[key] = Int(int64(v))
		case int64:
			p[key] = Int(v)
		case float64:
			p[key] = Float(v)
		case bool:
			p[key] = Bool(v)
		case nil:
			p[key] = Nil()
		default:
			panic(fmt.Sprintf("props.New: unsupported value type %T for key %q", v, key))
		}
	}
	return p
}

// Clone returns an independent copy of the property set.
func (p Props) Clone() Props {
	if p == nil {
		return nil
	}
	out := make(Props, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Equal reports whether two property sets assign the same values to the
// same labels.
func (p Props) Equal(o Props) bool {
	if len(p) != len(o) {
		return false
	}
	for k, v := range p {
		ov, ok := o[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// Get returns the value for label k and whether it is present.
func (p Props) Get(k string) (Value, bool) {
	v, ok := p[k]
	return v, ok
}

// GetString returns the string value for label k, or "" if absent or of
// another kind.
func (p Props) GetString(k string) string {
	s, _ := p[k].AsString()
	return s
}

// GetInt returns the integer value for label k, or 0 if absent or of
// another kind.
func (p Props) GetInt(k string) int64 {
	n, _ := p[k].AsInt()
	return n
}

// Type returns the value of the reserved type property.
func (p Props) Type() string { return p.GetString(TypeKey) }

// With returns a copy of p with label k set to v.
func (p Props) With(k string, v Value) Props {
	out := p.Clone()
	if out == nil {
		out = make(Props, 1)
	}
	out[k] = v
	return out
}

// Keys returns the sorted property labels.
func (p Props) Keys() []string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Fingerprint returns a canonical string encoding of the property set,
// usable as a grouping/equality key (e.g. for coalescing via hashing).
func (p Props) Fingerprint() string {
	if len(p) == 0 {
		return ""
	}
	var b strings.Builder
	for _, k := range p.Keys() {
		kind, payload := p[k].Encode()
		fmt.Fprintf(&b, "%s\x00%d\x00%s\x01", k, kind, payload)
	}
	return b.String()
}

// String renders the property set in the paper's "k=v, k=v" notation
// with sorted keys.
func (p Props) String() string {
	var b strings.Builder
	for i, k := range p.Keys() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(p[k].String())
	}
	return b.String()
}
