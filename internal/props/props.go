package props

import (
	"fmt"
	"sort"
	"strings"
)

// TypeKey is the reserved property label that every TGraph entity must
// assign a value to whenever it exists (Definition 2.1).
const TypeKey = "type"

// field is one (interned key, value) pair.
type field struct {
	k Key
	v Value
}

// Props is a set of key-value pairs representing an assignment of
// values to the properties of a node or edge. It is an immutable value
// type over interned keys: the backing array is sorted by Key, shared
// freely (Clone is a header copy), and never mutated after
// construction — With/Without return fresh sets. The zero Props is the
// valid empty property set.
type Props struct {
	f []field // sorted by k, unique keys; immutable once published
}

// New builds a Props from alternating key, value pairs. It panics on an
// odd number of arguments or an unsupported value type (naming the
// offending key); it is intended for literals in tests and examples.
// A later duplicate key overwrites an earlier one, matching map
// literal semantics.
func New(pairs ...any) Props {
	if len(pairs)%2 != 0 {
		panic("props.New: odd number of arguments")
	}
	if len(pairs) == 0 {
		return Props{}
	}
	var b Builder
	b.Grow(len(pairs) / 2)
	for i := 0; i < len(pairs); i += 2 {
		key, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("props.New: key %v is not a string", pairs[i]))
		}
		switch v := pairs[i+1].(type) {
		case Value:
			b.Set(key, v)
		case string:
			b.Set(key, StringVal(v))
		case int:
			b.Set(key, Int(int64(v)))
		case int64:
			b.Set(key, Int(v))
		case uint:
			b.Set(key, Int(int64(v)))
		case uint64:
			if v > 1<<63-1 {
				panic(fmt.Sprintf("props.New: uint64 value %d for key %q overflows int64", v, key))
			}
			b.Set(key, Int(int64(v)))
		case float64:
			b.Set(key, Float(v))
		case float32:
			b.Set(key, Float(float64(v)))
		case bool:
			b.Set(key, Bool(v))
		case nil:
			b.Set(key, Nil())
		default:
			panic(fmt.Sprintf("props.New: unsupported value type %T for key %q", v, key))
		}
	}
	return b.Build()
}

// Len reports the number of properties in the set.
func (p Props) Len() int { return len(p.f) }

// Clone returns the property set itself: Props is immutable, so sharing
// the backing array is safe and free. The method survives for API
// symmetry with the old map-based runtime.
func (p Props) Clone() Props { return p }

// Equal reports whether two property sets assign the same values to the
// same labels. Sets sharing a backing array (the common case after
// Clone) compare in O(1).
func (p Props) Equal(o Props) bool {
	if len(p.f) != len(o.f) {
		return false
	}
	if len(p.f) == 0 || &p.f[0] == &o.f[0] {
		return true
	}
	for i, f := range p.f {
		if f.k != o.f[i].k || !f.v.Equal(o.f[i].v) {
			return false
		}
	}
	return true
}

// search returns the index of k in the field array, or the insertion
// point with ok=false. Property sets are small (a handful of fields),
// so a linear scan beats binary search in practice and keeps the loop
// branch-predictable.
func (p Props) search(k Key) (int, bool) {
	for i, f := range p.f {
		if f.k >= k {
			return i, f.k == k
		}
	}
	return len(p.f), false
}

// GetK returns the value for an interned key and whether it is present.
func (p Props) GetK(k Key) (Value, bool) {
	if i, ok := p.search(k); ok {
		return p.f[i].v, true
	}
	return Value{}, false
}

// Get returns the value for label k and whether it is present. A label
// never interned anywhere in the process is a guaranteed miss and does
// not grow the dictionary.
func (p Props) Get(k string) (Value, bool) {
	key, ok := LookupKey(k)
	if !ok {
		return Value{}, false
	}
	return p.GetK(key)
}

// GetString returns the string value for label k, or "" if absent or of
// another kind.
func (p Props) GetString(k string) string {
	v, _ := p.Get(k)
	s, _ := v.AsString()
	return s
}

// GetInt returns the integer value for label k, or 0 if absent or of
// another kind.
func (p Props) GetInt(k string) int64 {
	v, _ := p.Get(k)
	n, _ := v.AsInt()
	return n
}

// Type returns the value of the reserved type property.
func (p Props) Type() string {
	v, ok := p.GetK(TypeK)
	if !ok {
		return ""
	}
	s, _ := v.AsString()
	return s
}

// WithK returns a copy of p with interned key k set to v.
func (p Props) WithK(k Key, v Value) Props {
	i, ok := p.search(k)
	out := make([]field, len(p.f), len(p.f)+1)
	copy(out, p.f)
	if ok {
		out[i].v = v
		return Props{f: out}
	}
	out = append(out, field{})
	copy(out[i+1:], out[i:])
	out[i] = field{k: k, v: v}
	return Props{f: out}
}

// With returns a copy of p with label k set to v.
func (p Props) With(k string, v Value) Props { return p.WithK(KeyOf(k), v) }

// WithoutK returns a copy of p with interned key k removed.
func (p Props) WithoutK(k Key) Props {
	i, ok := p.search(k)
	if !ok {
		return p
	}
	if len(p.f) == 1 {
		return Props{}
	}
	out := make([]field, 0, len(p.f)-1)
	out = append(out, p.f[:i]...)
	out = append(out, p.f[i+1:]...)
	return Props{f: out}
}

// Without returns a copy of p with label k removed.
func (p Props) Without(k string) Props {
	key, ok := LookupKey(k)
	if !ok {
		return p
	}
	return p.WithoutK(key)
}

// Range calls fn for every property in ascending Key order (an
// arbitrary but fixed per-process order) until fn returns false.
func (p Props) Range(fn func(Key, Value) bool) {
	for _, f := range p.f {
		if !fn(f.k, f.v) {
			return
		}
	}
}

// Keys returns the property labels sorted lexically.
func (p Props) Keys() []string {
	if len(p.f) == 0 {
		return nil
	}
	keys := make([]string, len(p.f))
	for i, f := range p.f {
		keys[i] = f.k.Name()
	}
	sort.Strings(keys)
	return keys
}

// ToMap converts the set to a plain map, for interchange and tests.
func (p Props) ToMap() map[string]Value {
	if len(p.f) == 0 {
		return nil
	}
	m := make(map[string]Value, len(p.f))
	for _, f := range p.f {
		m[f.k.Name()] = f.v
	}
	return m
}

// FromMap builds a Props from a plain map.
func FromMap(m map[string]Value) Props {
	if len(m) == 0 {
		return Props{}
	}
	var b Builder
	b.Grow(len(m))
	for k, v := range m {
		b.Set(k, v)
	}
	return b.Build()
}

// Fingerprint returns a canonical string encoding of the property set,
// usable as a grouping/equality key (e.g. for coalescing via hashing).
// The encoding sorts by label, so it is stable across processes.
func (p Props) Fingerprint() string {
	if len(p.f) == 0 {
		return ""
	}
	var b strings.Builder
	for _, k := range p.Keys() {
		v, _ := p.Get(k)
		kind, payload := v.Encode()
		fmt.Fprintf(&b, "%s\x00%d\x00%s\x01", k, kind, payload)
	}
	return b.String()
}

// String renders the property set in the paper's "k=v, k=v" notation
// with sorted keys.
func (p Props) String() string {
	var b strings.Builder
	for i, k := range p.Keys() {
		if i > 0 {
			b.WriteString(", ")
		}
		v, _ := p.Get(k)
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(v.String())
	}
	return b.String()
}

// Builder assembles a Props field by field; the zero Builder is ready
// to use. Set order is irrelevant (a later Set of the same key wins)
// and Build sorts once, so decode loops and aggregators pay one sort
// per property set instead of per-field map overhead.
type Builder struct {
	f []field
}

// Grow pre-allocates capacity for n fields.
func (b *Builder) Grow(n int) {
	if cap(b.f)-len(b.f) < n {
		f := make([]field, len(b.f), len(b.f)+n)
		copy(f, b.f)
		b.f = f
	}
}

// SetK adds or replaces the field for interned key k.
func (b *Builder) SetK(k Key, v Value) {
	for i := range b.f {
		if b.f[i].k == k {
			b.f[i].v = v
			return
		}
	}
	b.f = append(b.f, field{k: k, v: v})
}

// Set adds or replaces the field for label k.
func (b *Builder) Set(k string, v Value) { b.SetK(KeyOf(k), v) }

// setIfAbsentK adds the field only if the key is not yet set.
func (b *Builder) setIfAbsentK(k Key, v Value) {
	for i := range b.f {
		if b.f[i].k == k {
			return
		}
	}
	b.f = append(b.f, field{k: k, v: v})
}

// Len reports how many fields the builder holds.
func (b *Builder) Len() int { return len(b.f) }

// Build finalises the set. The builder is reset and may be reused; the
// returned Props owns the field array exclusively.
func (b *Builder) Build() Props {
	if len(b.f) == 0 {
		return Props{}
	}
	f := b.f
	b.f = nil
	// Insertion sort: property sets are small, and sort.Slice would
	// allocate (reflect-based swapper) on every Build in the zoom hot
	// loops.
	for i := 1; i < len(f); i++ {
		for j := i; j > 0 && f[j].k < f[j-1].k; j-- {
			f[j], f[j-1] = f[j-1], f[j]
		}
	}
	return Props{f: f}
}
