package props

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAggSpecValidate(t *testing.T) {
	good := AggSpec{Fields: []AggField{Count("n"), Sum("s", "x"), Custom("c", "x", func(a, b Value) Value { return a })}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	for name, spec := range map[string]AggSpec{
		"empty out":   {Fields: []AggField{{Kind: AggCount}}},
		"missing in":  {Fields: []AggField{{Out: "s", Kind: AggSum}}},
		"nil combine": {Fields: []AggField{{Out: "c", Kind: AggCustom, In: "x"}}},
	} {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestAggCount(t *testing.T) {
	spec := AggSpec{Fields: []AggField{Count("students")}}
	st := spec.Init(New("type", "person"))
	st = spec.Merge(st, spec.Init(New("type", "person")))
	st = spec.Merge(st, spec.Init(New("type", "person")))
	out := spec.Result(New("type", "school", "name", "MIT"), st)
	if out.GetInt("students") != 3 {
		t.Errorf("count = %d, want 3", out.GetInt("students"))
	}
	if out.Type() != "school" || out.GetString("name") != "MIT" {
		t.Errorf("base props lost: %v", out)
	}
}

func TestAggSumMinMaxAvgAny(t *testing.T) {
	spec := AggSpec{Fields: []AggField{
		Sum("total", "x"), Min("lo", "x"), Max("hi", "x"), Avg("mean", "x"), Any("pick", "x"),
	}}
	inputs := []int64{5, 1, 9, 3}
	var st AggState
	for i, n := range inputs {
		s := spec.Init(New("x", n))
		if i == 0 {
			st = s
		} else {
			st = spec.Merge(st, s)
		}
	}
	out := spec.Result(Props{}, st)
	if f, _ := mustGet(out, "total").AsFloat(); f != 18 {
		t.Errorf("sum = %v, want 18", mustGet(out, "total"))
	}
	if out.GetInt("lo") != 1 || out.GetInt("hi") != 9 {
		t.Errorf("min/max = %v/%v", mustGet(out, "lo"), mustGet(out, "hi"))
	}
	if f, _ := mustGet(out, "mean").AsFloat(); f != 4.5 {
		t.Errorf("avg = %v, want 4.5", mustGet(out, "mean"))
	}
	if out.GetInt("pick") != 1 {
		t.Errorf("any should be deterministic smallest, got %v", mustGet(out, "pick"))
	}
}

func TestAggMissingInputs(t *testing.T) {
	spec := AggSpec{Fields: []AggField{Sum("s", "x"), Count("n")}}
	st := spec.Merge(spec.Init(New("y", 1)), spec.Init(New("x", 4)))
	out := spec.Result(Props{}, st)
	if f, _ := mustGet(out, "s").AsFloat(); f != 4 {
		t.Errorf("sum over partial inputs = %v, want 4", mustGet(out, "s"))
	}
	if out.GetInt("n") != 2 {
		t.Errorf("count = %d, want 2", out.GetInt("n"))
	}
	// All-missing: no output key at all.
	st2 := spec.Init(New("y", 1))
	out2 := spec.Result(Props{}, st2)
	if _, ok := out2.Get("s"); ok {
		t.Error("sum with no inputs must be absent")
	}
}

func TestAggCustom(t *testing.T) {
	concatMax := func(a, b Value) Value {
		if a.Less(b) {
			return b
		}
		return a
	}
	spec := AggSpec{Fields: []AggField{Custom("best", "name", concatMax)}}
	st := spec.Merge(spec.Init(New("name", "ann")), spec.Init(New("name", "cat")))
	out := spec.Result(Props{}, st)
	if out.GetString("best") != "cat" {
		t.Errorf("custom = %v", mustGet(out, "best"))
	}
}

// Property: Merge is commutative and associative for built-in kinds
// (the paper requires f_agg to be commutative and associative so that
// the dataflow reduce is well-defined).
func TestAggMergeCommutativeAssociative(t *testing.T) {
	spec := AggSpec{Fields: []AggField{
		Count("n"), Sum("s", "x"), Min("lo", "x"), Max("hi", "x"), Avg("m", "x"), Any("a", "x"),
	}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gen := func() AggState {
			if r.Intn(5) == 0 {
				return spec.Init(New("y", 0)) // missing input
			}
			return spec.Init(New("x", int64(r.Intn(100))))
		}
		a, b, c := gen(), gen(), gen()
		ab := spec.Result(Props{}, spec.Merge(spec.Merge(a, b), c))
		ba := spec.Result(Props{}, spec.Merge(spec.Merge(b, a), c))
		bc := spec.Result(Props{}, spec.Merge(a, spec.Merge(b, c)))
		return aggEqual(ab, ba) && aggEqual(ab, bc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func aggEqual(a, b Props) bool {
	if a.Len() != b.Len() {
		return false
	}
	eq := true
	a.Range(func(k Key, v Value) bool {
		w, ok := b.GetK(k)
		if !ok {
			eq = false
			return false
		}
		fa, oka := v.AsFloat()
		fb, okb := w.AsFloat()
		if oka && okb {
			if math.Abs(fa-fb) > 1e-9 {
				eq = false
			}
			return eq
		}
		if !v.Equal(w) {
			eq = false
		}
		return eq
	})
	return eq
}

// mustGet is a test helper: the value for k, or the zero Value.
func mustGet(p Props, k string) Value {
	v, _ := p.Get(k)
	return v
}

func TestAggKindString(t *testing.T) {
	for k, want := range map[AggKind]string{
		AggCount: "count", AggSum: "sum", AggMin: "min", AggMax: "max",
		AggAvg: "avg", AggAny: "any", AggCustom: "custom",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestAggKindUnknownString(t *testing.T) {
	if got := AggKind(99).String(); got != "agg(99)" {
		t.Errorf("unknown agg kind = %q", got)
	}
}
