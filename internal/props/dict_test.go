package props

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestDictInterning(t *testing.T) {
	if TypeK != KeyOf(TypeKey) {
		t.Error("TypeK must be the interned TypeKey")
	}
	if TypeK.Name() != TypeKey {
		t.Errorf("TypeK.Name() = %q", TypeK.Name())
	}
	a := KeyOf("dict-test-key-a")
	if b := KeyOf("dict-test-key-a"); b != a {
		t.Errorf("re-interning changed the key: %d vs %d", a, b)
	}
	if k, ok := LookupKey("dict-test-key-a"); !ok || k != a {
		t.Errorf("LookupKey = %d, %v", k, ok)
	}
	if _, ok := LookupKey("dict-test-key-never-interned"); ok {
		t.Error("LookupKey must not intern")
	}
	before := DictSize()
	if _, ok := LookupKey("dict-test-key-never-interned-2"); ok || DictSize() != before {
		t.Error("LookupKey grew the dictionary")
	}
	names := DictNames()
	if !sort.StringsAreSorted(names) {
		t.Error("DictNames must be sorted")
	}
	found := false
	for _, n := range names {
		if n == "dict-test-key-a" {
			found = true
		}
	}
	if !found {
		t.Error("interned key missing from DictNames")
	}
}

// TestDictConcurrentInterning hammers the sharded symbol table from
// many goroutines (run under -race by `make check`): every goroutine
// must observe one stable Key per label, and reverse lookups must never
// tear.
func TestDictConcurrentInterning(t *testing.T) {
	const goroutines = 16
	const labels = 64
	keys := make([][]Key, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			keys[g] = make([]Key, labels)
			for i := 0; i < labels; i++ {
				name := fmt.Sprintf("race-key-%d", i)
				k := KeyOf(name)
				keys[g][i] = k
				if got := k.Name(); got != name {
					t.Errorf("Key(%d).Name() = %q, want %q", k, got, name)
				}
				if lk, ok := LookupKey(name); !ok || lk != k {
					t.Errorf("LookupKey(%q) = %d, %v; want %d", name, lk, ok, k)
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := 0; i < labels; i++ {
			if keys[g][i] != keys[0][i] {
				t.Fatalf("goroutine %d interned %q as %d, goroutine 0 as %d",
					g, fmt.Sprintf("race-key-%d", i), keys[g][i], keys[0][i])
			}
		}
	}
}

// quickProps generates a small random property set and its plain-map
// shadow from the same seed.
func quickProps(r *rand.Rand) (Props, map[string]Value) {
	m := map[string]Value{}
	for i := 0; i < r.Intn(5); i++ {
		k := fmt.Sprintf("qk%d", r.Intn(6))
		switch r.Intn(4) {
		case 0:
			m[k] = Int(int64(r.Intn(100)))
		case 1:
			m[k] = StringVal(fmt.Sprintf("s%d", r.Intn(3)))
		case 2:
			m[k] = Bool(r.Intn(2) == 0)
		default:
			m[k] = Float(float64(r.Intn(10)) / 2)
		}
	}
	return FromMap(m), m
}

// Property: interned Props round-trip through plain maps unchanged.
func TestQuickPropsMapRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, m := quickProps(r)
		back := p.ToMap()
		if len(back) != len(m) {
			return false
		}
		for k, v := range m {
			w, ok := back[k]
			if !ok || !v.Equal(w) {
				return false
			}
		}
		return FromMap(back).Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Equal, Get, Len, Keys and String agree with the old
// map[string]Value semantics.
func TestQuickPropsMapSemantics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, m := quickProps(r)
		q, n := quickProps(r)
		mapEq := len(m) == len(n)
		if mapEq {
			for k, v := range m {
				if w, ok := n[k]; !ok || !v.Equal(w) {
					mapEq = false
					break
				}
			}
		}
		if p.Equal(q) != mapEq {
			return false
		}
		if p.Len() != len(m) {
			return false
		}
		for k, v := range m {
			if got, ok := p.Get(k); !ok || !got.Equal(v) {
				return false
			}
		}
		// Keys must be the map's keys in lexical order.
		want := make([]string, 0, len(m))
		for k := range m {
			want = append(want, k)
		}
		sort.Strings(want)
		got := p.Keys()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Range visits fields in strictly ascending Key order and
// With/Without preserve the sort invariant.
func TestQuickPropsSortInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, _ := quickProps(r)
		p = p.With(fmt.Sprintf("qk%d", r.Intn(8)), Int(1))
		p = p.Without(fmt.Sprintf("qk%d", r.Intn(8)))
		last := Key(0)
		first := true
		ok := true
		p.Range(func(k Key, _ Value) bool {
			if !first && k <= last {
				ok = false
				return false
			}
			first, last = false, k
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropsNewExtendedLiterals(t *testing.T) {
	p := New("f32", float32(1.5), "u", uint(7), "u64", uint64(9))
	if f, _ := mustGet(p, "f32").AsFloat(); f != 1.5 {
		t.Errorf("float32 literal = %v", mustGet(p, "f32"))
	}
	if p.GetInt("u") != 7 || p.GetInt("u64") != 9 {
		t.Errorf("uint literals = %v", p)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("uint64 overflow: want panic")
		}
		if s, ok := r.(string); !ok || !contains(s, "overflow-key") {
			t.Errorf("panic %v must name the offending key", r)
		}
	}()
	New("overflow-key", uint64(1<<63))
}

func TestPropsNewPanicNamesKey(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("bad value type: want panic")
		}
		if s, ok := r.(string); !ok || !contains(s, "bad-key") {
			t.Errorf("panic %v must name the offending key", r)
		}
	}()
	New("bad-key", struct{}{})
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
