package props

import "fmt"

// This file implements f_agg, the commutative and associative
// aggregation applied by aZoom^T to the property sets of vertices that
// map to the same new (Skolem) identifier within one snapshot.
//
// An AggSpec is a list of output fields, each computed by an AggKind
// over an input property. Aggregation proceeds in three phases that
// parallel a dataflow combiner: Init maps a single entity state to an
// accumulator, Merge combines two accumulators (commutatively and
// associatively), and Result materialises the output property set.

// AggKind enumerates the built-in aggregation functions.
type AggKind int

const (
	// AggCount counts the number of input entities in the group.
	AggCount AggKind = iota
	// AggSum sums the numeric input property.
	AggSum
	// AggMin takes the minimum input property value (Value.Less order).
	AggMin
	// AggMax takes the maximum input property value.
	AggMax
	// AggAvg averages the numeric input property.
	AggAvg
	// AggAny keeps an arbitrary but deterministic (smallest) value.
	AggAny
	// AggCustom applies a user-provided commutative, associative
	// combine function.
	AggCustom
)

// String returns the SQL-ish name of the aggregation kind.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	case AggAny:
		return "any"
	case AggCustom:
		return "custom"
	default:
		return fmt.Sprintf("agg(%d)", int(k))
	}
}

// CombineFunc combines two property values. User-supplied functions
// must be commutative and associative, as required by the paper.
type CombineFunc func(a, b Value) Value

// AggField computes one output property.
type AggField struct {
	// Out is the output property label (e.g. "students").
	Out string
	// Kind selects the aggregation function.
	Kind AggKind
	// In is the input property label the aggregate reads. Ignored by
	// AggCount.
	In string
	// Combine is the user combine function for AggCustom.
	Combine CombineFunc
}

// Count returns a count(*) aggregate field.
func Count(out string) AggField { return AggField{Out: out, Kind: AggCount} }

// Sum returns a sum(in) aggregate field.
func Sum(out, in string) AggField { return AggField{Out: out, Kind: AggSum, In: in} }

// Min returns a min(in) aggregate field.
func Min(out, in string) AggField { return AggField{Out: out, Kind: AggMin, In: in} }

// Max returns a max(in) aggregate field.
func Max(out, in string) AggField { return AggField{Out: out, Kind: AggMax, In: in} }

// Avg returns an avg(in) aggregate field.
func Avg(out, in string) AggField { return AggField{Out: out, Kind: AggAvg, In: in} }

// Any returns an any(in) aggregate field keeping a deterministic value.
func Any(out, in string) AggField { return AggField{Out: out, Kind: AggAny, In: in} }

// Custom returns a user-defined aggregate field; combine must be
// commutative and associative.
func Custom(out, in string, combine CombineFunc) AggField {
	return AggField{Out: out, Kind: AggCustom, In: in, Combine: combine}
}

// AggSpec is the full f_agg specification: zero or more aggregate
// fields. An empty spec still enforces identity-equivalence (the group
// collapses to one node) but adds no computed properties.
type AggSpec struct {
	Fields []AggField
}

// Validate checks the spec for malformed fields.
func (s AggSpec) Validate() error {
	for i, f := range s.Fields {
		if f.Out == "" {
			return fmt.Errorf("props: aggregate field %d has empty output label", i)
		}
		if f.Kind != AggCount && f.In == "" {
			return fmt.Errorf("props: aggregate field %q (%v) needs an input label", f.Out, f.Kind)
		}
		if f.Kind == AggCustom && f.Combine == nil {
			return fmt.Errorf("props: custom aggregate field %q has nil combine", f.Out)
		}
	}
	return nil
}

// accum is the per-field accumulator.
type accum struct {
	count int64
	sum   float64
	val   Value
	has   bool
}

// AggState is the opaque accumulator for a group.
type AggState []accum

// Bind interns the spec's input and output labels once, returning a
// BoundAgg the zoom hot loops use so that per-entity aggregation is
// pure integer-keyed work.
func (s AggSpec) Bind() BoundAgg {
	b := BoundAgg{
		fields: s.Fields,
		in:     make([]Key, len(s.Fields)),
		out:    make([]Key, len(s.Fields)),
	}
	for i, f := range s.Fields {
		if f.Kind != AggCount {
			b.in[i] = KeyOf(f.In)
		}
		b.out[i] = KeyOf(f.Out)
	}
	return b
}

// Init maps one entity's property set to a fresh accumulator state.
// Convenience form of BoundAgg.Init; hot loops should Bind once.
func (s AggSpec) Init(p Props) AggState { return s.Bind().Init(p) }

// Merge combines two accumulator states; see BoundAgg.Merge.
func (s AggSpec) Merge(a, b AggState) AggState { return s.Bind().Merge(a, b) }

// Result materialises the output property set; see BoundAgg.Result.
func (s AggSpec) Result(base Props, st AggState) Props { return s.Bind().Result(base, st) }

// BoundAgg is an AggSpec whose input and output labels have been
// interned. It is cheap to copy and safe for concurrent use.
type BoundAgg struct {
	fields []AggField
	in     []Key
	out    []Key
}

// Len reports the number of aggregate fields.
func (b BoundAgg) Len() int { return len(b.fields) }

// Init maps one entity's property set to a fresh accumulator state.
func (b BoundAgg) Init(p Props) AggState {
	st := make(AggState, len(b.fields))
	for i, f := range b.fields {
		switch f.Kind {
		case AggCount:
			st[i] = accum{count: 1, has: true}
		case AggSum, AggAvg:
			if v, ok := p.GetK(b.in[i]); ok {
				if fl, ok := v.AsFloat(); ok {
					st[i] = accum{count: 1, sum: fl, has: true}
				}
			}
		default: // min, max, any, custom
			if v, ok := p.GetK(b.in[i]); ok {
				st[i] = accum{count: 1, val: v, has: true}
			}
		}
	}
	return st
}

// Merge combines two accumulator states into a fresh one. It is
// commutative and associative for all built-in kinds, and for AggCustom
// whenever the user combine function is.
func (b BoundAgg) Merge(x, y AggState) AggState {
	out := make(AggState, len(b.fields))
	copy(out, x)
	b.MergeInto(out, y)
	return out
}

// MergeInto folds src into dst in place, saving the accumulator
// allocation Merge pays. dst must be exclusively owned by the caller.
func (b BoundAgg) MergeInto(dst, src AggState) {
	for i, f := range b.fields {
		dst[i] = mergeAccum(f, dst[i], src[i])
	}
}

// Accumulate folds one entity's property set directly into dst —
// equivalent to MergeInto(dst, Init(p)) without allocating the
// intermediate accumulator. dst must be exclusively owned by the caller.
func (b BoundAgg) Accumulate(dst AggState, p Props) {
	for i, f := range b.fields {
		var y accum
		switch f.Kind {
		case AggCount:
			y = accum{count: 1, has: true}
		case AggSum, AggAvg:
			if v, ok := p.GetK(b.in[i]); ok {
				if fl, ok := v.AsFloat(); ok {
					y = accum{count: 1, sum: fl, has: true}
				}
			}
		default: // min, max, any, custom
			if v, ok := p.GetK(b.in[i]); ok {
				y = accum{count: 1, val: v, has: true}
			}
		}
		dst[i] = mergeAccum(f, dst[i], y)
	}
}

// mergeAccum combines two per-field accumulators.
func mergeAccum(f AggField, x, y accum) accum {
	if !x.has {
		return y
	}
	if !y.has {
		return x
	}
	m := accum{count: x.count + y.count, sum: x.sum + y.sum, has: true}
	switch f.Kind {
	case AggMin, AggAny:
		if y.val.Less(x.val) {
			m.val = y.val
		} else {
			m.val = x.val
		}
	case AggMax:
		if x.val.Less(y.val) {
			m.val = y.val
		} else {
			m.val = x.val
		}
	case AggCustom:
		m.val = f.Combine(x.val, y.val)
	}
	return m
}

// Result materialises the output property set: base (typically the
// Skolem-derived identifying properties of the new node) extended with
// the computed aggregate fields.
func (b BoundAgg) Result(base Props, st AggState) Props {
	if len(b.fields) == 0 {
		return base
	}
	var out Builder
	out.Grow(base.Len() + len(b.fields))
	base.Range(func(k Key, v Value) bool {
		out.SetK(k, v)
		return true
	})
	for i, f := range b.fields {
		a := st[i]
		if !a.has {
			continue
		}
		switch f.Kind {
		case AggCount:
			out.SetK(b.out[i], Int(a.count))
		case AggSum:
			out.SetK(b.out[i], Float(a.sum))
		case AggAvg:
			out.SetK(b.out[i], Float(a.sum/float64(a.count)))
		default:
			out.SetK(b.out[i], a.val)
		}
	}
	return out.Build()
}
