package props

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// The key dictionary is a process-wide symbol table mapping property
// labels to small dense integers. Interning a label once makes every
// later comparison, lookup and sort an integer operation, and lets the
// storage layer write key indexes instead of repeated strings.
//
// The table is sharded: lookups take one shard RLock on the string hash
// (reverse lookups are lock-free via an atomic snapshot of the name
// slice), and only the slow path of a first-time intern serialises on
// the grow mutex. Keys are never freed — the set of distinct property
// labels in a workload is tiny (tens, not millions), which is the whole
// premise of dictionary encoding.

// Key is an interned property label. The zero Key is the reserved
// TypeKey; keys are only comparable within the process that interned
// them (persisted data stores label strings, not Keys).
type Key uint32

const dictShards = 16

type dictShard struct {
	mu sync.RWMutex
	m  map[string]Key
}

var dict = func() *struct {
	shards [dictShards]dictShard
	names  atomic.Pointer[[]string] // Key -> label; copy-on-append snapshot
	grow   sync.Mutex
} {
	d := &struct {
		shards [dictShards]dictShard
		names  atomic.Pointer[[]string]
		grow   sync.Mutex
	}{}
	for i := range d.shards {
		d.shards[i].m = make(map[string]Key)
	}
	names := []string{}
	d.names.Store(&names)
	return d
}()

// obsDictSize mirrors the dictionary size as the props.dict_size gauge.
// obs.ResetAll clears gauges, so PublishDictMetrics re-publishes it for
// snapshot consumers.
var obsDictSize = obs.Default().Gauge("props.dict_size")

// TypeK is the interned TypeKey, pre-interned so it is Key(0) in every
// process.
var TypeK = KeyOf(TypeKey)

func shardOf(name string) *dictShard {
	// FNV-1a over the label; labels are short, so this inlines well.
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return &dict.shards[h&(dictShards-1)]
}

// KeyOf interns a label and returns its Key.
func KeyOf(name string) Key {
	s := shardOf(name)
	s.mu.RLock()
	k, ok := s.m[name]
	s.mu.RUnlock()
	if ok {
		return k
	}
	return internSlow(s, name)
}

func internSlow(s *dictShard, name string) Key {
	dict.grow.Lock()
	defer dict.grow.Unlock()
	s.mu.RLock()
	k, ok := s.m[name]
	s.mu.RUnlock()
	if ok {
		return k
	}
	old := *dict.names.Load()
	k = Key(len(old))
	names := make([]string, len(old)+1)
	copy(names, old)
	names[len(old)] = name
	dict.names.Store(&names)
	s.mu.Lock()
	s.m[name] = k
	s.mu.Unlock()
	obsDictSize.Set(int64(len(names)))
	return k
}

// LookupKey returns the Key for a label without interning it. A miss
// means no property set in the process has ever carried the label, so
// Get on a never-interned label is a cheap guaranteed miss.
func LookupKey(name string) (Key, bool) {
	s := shardOf(name)
	s.mu.RLock()
	k, ok := s.m[name]
	s.mu.RUnlock()
	return k, ok
}

// Name returns the label the Key was interned from. It panics on a Key
// that was never handed out (an out-of-range integer cast to Key).
func (k Key) Name() string {
	names := *dict.names.Load()
	return names[k]
}

// String renders the Key as its label.
func (k Key) String() string { return k.Name() }

// DictSize reports the number of interned labels.
func DictSize() int { return len(*dict.names.Load()) }

// DictNames returns the interned labels sorted lexically (the intern
// order is scheduling-dependent and not meaningful).
func DictNames() []string {
	names := *dict.names.Load()
	out := make([]string, len(names))
	copy(out, names)
	sort.Strings(out)
	return out
}

// PublishDictMetrics re-publishes the props.dict_size gauge, for
// snapshot consumers that reset the obs registry before a run.
func PublishDictMetrics() {
	obsDictSize.Set(int64(DictSize()))
}
