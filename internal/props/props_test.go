package props

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := Int(42); v.Kind() != KindInt {
		t.Errorf("Int kind = %v", v.Kind())
	} else if n, ok := v.AsInt(); !ok || n != 42 {
		t.Errorf("AsInt = %d, %v", n, ok)
	}
	if v := StringVal("MIT"); v.GetStringOr() != "MIT" {
		t.Errorf("AsString mismatch")
	}
	if v := Bool(true); func() bool { b, ok := v.AsBool(); return b && ok }() != true {
		t.Error("AsBool(true) failed")
	}
	if v := Float(2.5); func() bool { f, ok := v.AsFloat(); return ok && f == 2.5 }() != true {
		t.Error("AsFloat failed")
	}
	if f, ok := Int(3).AsFloat(); !ok || f != 3 {
		t.Error("ints should widen to float")
	}
	if !Nil().IsNil() {
		t.Error("Nil().IsNil() = false")
	}
	if _, ok := StringVal("x").AsInt(); ok {
		t.Error("cross-kind accessor must fail")
	}
}

// GetStringOr is a test helper: the string payload or "".
func (v Value) GetStringOr() string {
	s, _ := v.AsString()
	return s
}

func TestValueOrdering(t *testing.T) {
	if !Int(1).Less(Int(2)) || Int(2).Less(Int(1)) {
		t.Error("int ordering broken")
	}
	if !StringVal("a").Less(StringVal("b")) {
		t.Error("string ordering broken")
	}
	if !Int(5).Less(StringVal("a")) {
		t.Error("kinds must order before payloads")
	}
}

func TestValueStringAndEncodeDecode(t *testing.T) {
	vals := []Value{Nil(), Bool(true), Bool(false), Int(-7), Float(3.25), StringVal("hello world")}
	for _, v := range vals {
		k, payload := v.Encode()
		got, err := Decode(k, payload)
		if err != nil {
			t.Errorf("Decode(%v, %q): %v", k, payload, err)
			continue
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
	if _, err := Decode(KindInt, "abc"); err == nil {
		t.Error("Decode bad int: want error")
	}
	if _, err := Decode(Kind(99), "x"); err == nil {
		t.Error("Decode unknown kind: want error")
	}
}

func TestPropsNewCloneEqual(t *testing.T) {
	p := New("type", "person", "school", "MIT", "editCount", 15)
	if p.Type() != "person" {
		t.Errorf("Type() = %q", p.Type())
	}
	if p.GetString("school") != "MIT" {
		t.Errorf("GetString(school) = %q", p.GetString("school"))
	}
	if p.GetInt("editCount") != 15 {
		t.Errorf("GetInt = %d", p.GetInt("editCount"))
	}
	q := p.Clone()
	if !p.Equal(q) {
		t.Error("clone not equal")
	}
	q = q.With("school", StringVal("CMU"))
	if p.Equal(q) {
		t.Error("derived set must not compare equal to original")
	}
	if p.GetString("school") != "MIT" {
		t.Error("original mutated through With on clone")
	}
	var zero Props
	if zero.Clone().Len() != 0 {
		t.Error("Clone of zero Props should be empty")
	}
	if !zero.Equal(Props{}) {
		t.Error("zero and empty props should be equal")
	}
}

func TestPropsNewPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"odd":     func() { New("a") },
		"non-str": func() { New(1, 2) },
		"badtype": func() { New("k", struct{}{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPropsWith(t *testing.T) {
	p := New("a", 1)
	q := p.With("b", Int(2))
	if p.Len() != 1 || q.Len() != 2 {
		t.Errorf("With should not mutate: p=%v q=%v", p, q)
	}
	if r := q.Without("b"); !r.Equal(p) {
		t.Errorf("Without(b) = %v, want %v", r, p)
	}
	if r := p.Without("never-seen-key-xyz"); !r.Equal(p) {
		t.Error("Without of absent key must be identity")
	}
	var nilP Props
	if r := nilP.With("x", Int(1)); r.GetInt("x") != 1 {
		t.Error("With on nil props failed")
	}
}

func TestPropsFingerprintAndString(t *testing.T) {
	a := New("type", "person", "school", "MIT")
	b := New("school", "MIT", "type", "person")
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint must be order-independent")
	}
	c := New("school", "CMU", "type", "person")
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different props, same fingerprint")
	}
	if got, want := a.String(), "school=MIT, type=person"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if (Props{}).Fingerprint() != "" {
		t.Error("empty fingerprint should be empty string")
	}
}

func TestFingerprintCollisionResistance(t *testing.T) {
	// Keys/values containing the separator bytes must not collide.
	a := New("k", StringVal("x\x01y"))
	b := New("k", StringVal("x"), "y", nil)
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("fingerprint collision on separator bytes")
	}
}

func TestPropsEqualFingerprintAgreement(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gen := func() Props {
			var b Builder
			for i := 0; i < r.Intn(4); i++ {
				k := string(rune('a' + r.Intn(3)))
				switch r.Intn(3) {
				case 0:
					b.Set(k, Int(int64(r.Intn(3))))
				case 1:
					b.Set(k, StringVal(string(rune('x'+r.Intn(2)))))
				default:
					b.Set(k, Bool(r.Intn(2) == 0))
				}
			}
			return b.Build()
		}
		a, b := gen(), gen()
		return a.Equal(b) == (a.Fingerprint() == b.Fingerprint())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNil: "nil", KindBool: "bool", KindInt: "int",
		KindFloat: "float", KindString: "string", Kind(42): "kind(42)",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestValueString(t *testing.T) {
	for _, tc := range []struct {
		v    Value
		want string
	}{
		{Nil(), "<nil>"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Int(-3), "-3"},
		{Float(2.5), "2.5"},
		{StringVal("x"), "x"},
	} {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("%v.String() = %q, want %q", tc.v.Kind(), got, tc.want)
		}
	}
}

func TestValueLessFloatsAndStrings(t *testing.T) {
	if !Float(1.5).Less(Float(2.5)) || Float(2.5).Less(Float(1.5)) {
		t.Error("float ordering")
	}
	if Nil().Less(Nil()) {
		t.Error("nil not less than nil")
	}
	if _, ok := Nil().AsFloat(); ok {
		t.Error("nil AsFloat must fail")
	}
}

func TestPropsGet(t *testing.T) {
	p := New("a", 1)
	if v, ok := p.Get("a"); !ok || v.String() != "1" {
		t.Errorf("Get(a) = %v, %v", v, ok)
	}
	if _, ok := p.Get("b"); ok {
		t.Error("Get(b) must miss")
	}
}

func TestPropsNewValueAndNilForms(t *testing.T) {
	p := New("v", Int(7), "n", nil, "i64", int64(9))
	if p.GetInt("v") != 7 || p.GetInt("i64") != 9 {
		t.Errorf("typed constructors: %v", p)
	}
	if !mustGet(p, "n").IsNil() {
		t.Error("nil literal should produce Nil value")
	}
}

func TestDecodeBadBool(t *testing.T) {
	if _, err := Decode(KindBool, "zz"); err == nil {
		t.Error("bad bool payload: want error")
	}
	if _, err := Decode(KindFloat, "zz"); err == nil {
		t.Error("bad float payload: want error")
	}
}
