// Package props implements property values and property maps for
// TGraph entities (the attribute component of the paper's Section 2
// TGraph model), together with the commutative/associative aggregation
// functions used by aZoom^T (Section 3.1) and the first/last/any
// resolve functions used by wZoom^T (Section 3.2).
package props

import (
	"fmt"
	"strconv"
)

// Kind enumerates the dynamic types a property value can take.
type Kind uint8

const (
	KindNil Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is an immutable tagged-union property value. The zero Value is
// the nil value. Using a concrete union rather than interface{} keeps
// property maps allocation-light, which matters in the zoom inner
// loops.
type Value struct {
	kind Kind
	num  int64 // int payload, or bool as 0/1
	fl   float64
	str  string
}

// Nil returns the nil Value.
func Nil() Value { return Value{} }

// Bool returns a boolean Value.
func Bool(b bool) Value {
	var n int64
	if b {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Int returns an integer Value.
func Int(i int64) Value { return Value{kind: KindInt, num: i} }

// Float returns a floating-point Value.
func Float(f float64) Value { return Value{kind: KindFloat, fl: f} }

// String returns a string Value. (Constructor; the fmt.Stringer method
// is Value.String.)
func StringVal(s string) Value { return Value{kind: KindString, str: s} }

// Kind returns the dynamic kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNil reports whether the value is the nil value.
func (v Value) IsNil() bool { return v.kind == KindNil }

// AsBool returns the boolean payload; ok is false if the kind differs.
func (v Value) AsBool() (b, ok bool) { return v.num != 0, v.kind == KindBool }

// AsInt returns the integer payload; ok is false if the kind differs.
func (v Value) AsInt() (int64, bool) { return v.num, v.kind == KindInt }

// AsFloat returns the float payload; integer values are widened. ok is
// false for other kinds.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindFloat:
		return v.fl, true
	case KindInt:
		return float64(v.num), true
	default:
		return 0, false
	}
}

// AsString returns the string payload; ok is false if the kind differs.
func (v Value) AsString() (string, bool) { return v.str, v.kind == KindString }

// Equal reports deep equality of two values (kind and payload).
func (v Value) Equal(o Value) bool { return v == o }

// Less defines a total order over values: first by kind, then by
// payload. It is used by deterministic min/max aggregation and sorting.
func (v Value) Less(o Value) bool {
	if v.kind != o.kind {
		return v.kind < o.kind
	}
	switch v.kind {
	case KindFloat:
		return v.fl < o.fl
	case KindString:
		return v.str < o.str
	default:
		return v.num < o.num
	}
}

// String renders the value for display and round-trippable encoding.
func (v Value) String() string {
	switch v.kind {
	case KindNil:
		return "<nil>"
	case KindBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.fl, 'g', -1, 64)
	default:
		return v.str
	}
}

// Encode serialises the value as a (kind, payload) string pair for the
// storage layer.
func (v Value) Encode() (Kind, string) {
	switch v.kind {
	case KindBool, KindInt:
		return v.kind, strconv.FormatInt(v.num, 10)
	case KindFloat:
		return v.kind, strconv.FormatFloat(v.fl, 'g', -1, 64)
	case KindString:
		return v.kind, v.str
	default:
		return KindNil, ""
	}
}

// Decode reconstructs a value from its (kind, payload) encoding.
func Decode(k Kind, payload string) (Value, error) {
	switch k {
	case KindNil:
		return Nil(), nil
	case KindBool:
		n, err := strconv.ParseInt(payload, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("props: decode bool %q: %v", payload, err)
		}
		return Bool(n != 0), nil
	case KindInt:
		n, err := strconv.ParseInt(payload, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("props: decode int %q: %v", payload, err)
		}
		return Int(n), nil
	case KindFloat:
		f, err := strconv.ParseFloat(payload, 64)
		if err != nil {
			return Value{}, fmt.Errorf("props: decode float %q: %v", payload, err)
		}
		return Float(f), nil
	case KindString:
		return StringVal(payload), nil
	default:
		return Value{}, fmt.Errorf("props: decode: unknown kind %d", k)
	}
}
