package props

import "fmt"

// This file implements the window aggregation (resolve) functions of
// wZoom^T. A given entity may have several states inside one temporal
// window; the resolve function decides, per attribute, which value
// represents the window: first, last, or any (the default).

// Resolver selects which of an attribute's values within a window to
// accept.
type Resolver int

const (
	// ResolveAny keeps the value of the earliest state that defines the
	// attribute (deterministic "any").
	ResolveAny Resolver = iota
	// ResolveFirst keeps the value from the earliest state.
	ResolveFirst
	// ResolveLast keeps the value from the latest state.
	ResolveLast
)

// String returns the paper's name for the resolver.
func (r Resolver) String() string {
	switch r {
	case ResolveFirst:
		return "first"
	case ResolveLast:
		return "last"
	case ResolveAny:
		return "any"
	default:
		return fmt.Sprintf("resolver(%d)", int(r))
	}
}

// ParseResolver parses "first", "last" or "any".
func ParseResolver(s string) (Resolver, error) {
	switch s {
	case "first":
		return ResolveFirst, nil
	case "last":
		return ResolveLast, nil
	case "any", "":
		return ResolveAny, nil
	default:
		return 0, fmt.Errorf("props: unknown resolver %q", s)
	}
}

// ResolveSpec assigns a resolver per attribute, with a default for
// attributes not listed.
type ResolveSpec struct {
	Default Resolver
	PerKey  map[string]Resolver
}

// LastWins is a ResolveSpec resolving every attribute to its latest
// value in the window.
var LastWins = ResolveSpec{Default: ResolveLast}

// FirstWins is a ResolveSpec resolving every attribute to its earliest
// value in the window.
var FirstWins = ResolveSpec{Default: ResolveFirst}

// AnyWins is the paper's default ResolveSpec.
var AnyWins = ResolveSpec{Default: ResolveAny}

// For returns the resolver for attribute k.
func (s ResolveSpec) For(k string) Resolver {
	if r, ok := s.PerKey[k]; ok {
		return r
	}
	return s.Default
}

// Bind interns the per-key labels once, returning a BoundResolve the
// wZoom hot loop uses.
func (s ResolveSpec) Bind() BoundResolve {
	b := BoundResolve{def: s.Default}
	if len(s.PerKey) > 0 {
		b.perKey = make(map[Key]Resolver, len(s.PerKey))
		for k, r := range s.PerKey {
			b.perKey[KeyOf(k)] = r
		}
	}
	return b
}

// Apply resolves a sequence of property-set states into a single
// representative property set; see BoundResolve.Apply. Hot loops should
// Bind once instead.
func (s ResolveSpec) Apply(states []Props) Props { return s.Bind().Apply(states) }

// BoundResolve is a ResolveSpec whose per-key labels have been
// interned. It is cheap to copy and safe for concurrent use.
type BoundResolve struct {
	def    Resolver
	perKey map[Key]Resolver
}

// For returns the resolver for interned attribute k.
func (b BoundResolve) For(k Key) Resolver {
	if r, ok := b.perKey[k]; ok {
		return r
	}
	return b.def
}

// Apply resolves a sequence of property-set states into a single
// representative property set. The states must be ordered by start
// time ascending (the natural order of an entity's states within a
// window). The output contains every attribute defined by at least one
// state. A single-state window resolves to that state without copying
// (Props is immutable).
func (b BoundResolve) Apply(states []Props) Props {
	switch len(states) {
	case 0:
		return Props{}
	case 1:
		return states[0]
	}
	var out Builder
	out.Grow(states[0].Len())
	for si, st := range states {
		for _, f := range st.f {
			if si == 0 || b.For(f.k) == ResolveLast {
				out.SetK(f.k, f.v) // later states overwrite
			} else { // first, any: earliest defining state wins
				out.setIfAbsentK(f.k, f.v)
			}
		}
	}
	return out.Build()
}
