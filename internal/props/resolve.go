package props

import "fmt"

// This file implements the window aggregation (resolve) functions of
// wZoom^T. A given entity may have several states inside one temporal
// window; the resolve function decides, per attribute, which value
// represents the window: first, last, or any (the default).

// Resolver selects which of an attribute's values within a window to
// accept.
type Resolver int

const (
	// ResolveAny keeps the value of the earliest state that defines the
	// attribute (deterministic "any").
	ResolveAny Resolver = iota
	// ResolveFirst keeps the value from the earliest state.
	ResolveFirst
	// ResolveLast keeps the value from the latest state.
	ResolveLast
)

// String returns the paper's name for the resolver.
func (r Resolver) String() string {
	switch r {
	case ResolveFirst:
		return "first"
	case ResolveLast:
		return "last"
	case ResolveAny:
		return "any"
	default:
		return fmt.Sprintf("resolver(%d)", int(r))
	}
}

// ParseResolver parses "first", "last" or "any".
func ParseResolver(s string) (Resolver, error) {
	switch s {
	case "first":
		return ResolveFirst, nil
	case "last":
		return ResolveLast, nil
	case "any", "":
		return ResolveAny, nil
	default:
		return 0, fmt.Errorf("props: unknown resolver %q", s)
	}
}

// ResolveSpec assigns a resolver per attribute, with a default for
// attributes not listed.
type ResolveSpec struct {
	Default Resolver
	PerKey  map[string]Resolver
}

// LastWins is a ResolveSpec resolving every attribute to its latest
// value in the window.
var LastWins = ResolveSpec{Default: ResolveLast}

// FirstWins is a ResolveSpec resolving every attribute to its earliest
// value in the window.
var FirstWins = ResolveSpec{Default: ResolveFirst}

// AnyWins is the paper's default ResolveSpec.
var AnyWins = ResolveSpec{Default: ResolveAny}

// For returns the resolver for attribute k.
func (s ResolveSpec) For(k string) Resolver {
	if r, ok := s.PerKey[k]; ok {
		return r
	}
	return s.Default
}

// Apply resolves a sequence of property-set states into a single
// representative property set. The states must be ordered by start
// time ascending (the natural order of an entity's states within a
// window). The output contains every attribute defined by at least one
// state.
func (s ResolveSpec) Apply(states []Props) Props {
	if len(states) == 0 {
		return nil
	}
	if len(states) == 1 {
		return states[0].Clone()
	}
	out := make(Props)
	for _, st := range states {
		for k, v := range st {
			switch s.For(k) {
			case ResolveLast:
				out[k] = v // later states overwrite
			default: // first, any
				if _, ok := out[k]; !ok {
					out[k] = v
				}
			}
		}
	}
	return out
}
