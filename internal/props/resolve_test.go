package props

import "testing"

func TestParseResolver(t *testing.T) {
	for in, want := range map[string]Resolver{
		"first": ResolveFirst, "last": ResolveLast, "any": ResolveAny, "": ResolveAny,
	} {
		got, err := ParseResolver(in)
		if err != nil || got != want {
			t.Errorf("ParseResolver(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseResolver("middle"); err == nil {
		t.Error("ParseResolver(middle): want error")
	}
}

func TestResolverString(t *testing.T) {
	for r, want := range map[Resolver]string{ResolveFirst: "first", ResolveLast: "last", ResolveAny: "any"} {
		if r.String() != want {
			t.Errorf("%v", r)
		}
	}
}

func TestResolveApplyFirstLast(t *testing.T) {
	// Bob's two states within a window: person, then person@CMU.
	states := []Props{
		New("type", "person"),
		New("type", "person", "school", "CMU"),
	}
	first := ResolveSpec{Default: ResolveFirst}.Apply(states)
	if _, ok := first.Get("school"); !ok {
		t.Error("first: attribute defined only later must still appear (earliest defining state wins)")
	}
	last := ResolveSpec{Default: ResolveLast}.Apply(states)
	if last.GetString("school") != "CMU" {
		t.Errorf("last: school = %q, want CMU", last.GetString("school"))
	}

	states2 := []Props{
		New("school", "MIT"),
		New("school", "CMU"),
	}
	if got := FirstWins.Apply(states2).GetString("school"); got != "MIT" {
		t.Errorf("first: school = %q, want MIT", got)
	}
	if got := LastWins.Apply(states2).GetString("school"); got != "CMU" {
		t.Errorf("last: school = %q, want CMU", got)
	}
	if got := AnyWins.Apply(states2).GetString("school"); got != "MIT" {
		t.Errorf("any must be deterministic (earliest), got %q", got)
	}
}

func TestResolvePerKey(t *testing.T) {
	spec := ResolveSpec{
		Default: ResolveFirst,
		PerKey:  map[string]Resolver{"school": ResolveLast},
	}
	states := []Props{
		New("name", "bob", "school", "MIT"),
		New("name", "bobby", "school", "CMU"),
	}
	out := spec.Apply(states)
	if out.GetString("name") != "bob" || out.GetString("school") != "CMU" {
		t.Errorf("per-key resolve = %v", out)
	}
}

func TestResolveApplyEdgeCases(t *testing.T) {
	if (ResolveSpec{}).Apply(nil).Len() != 0 {
		t.Error("resolving no states should yield the empty set")
	}
	p := New("a", 1)
	out := LastWins.Apply([]Props{p})
	if !out.Equal(p) {
		t.Error("single state should round-trip")
	}
	out = out.With("b", Int(2))
	if _, ok := p.Get("b"); ok {
		t.Error("deriving from the resolved set must not affect the input")
	}
}

func TestResolverUnknownString(t *testing.T) {
	if got := Resolver(9).String(); got != "resolver(9)" {
		t.Errorf("unknown resolver = %q", got)
	}
}
