package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func check(t *testing.T, src string) []Diagnostic {
	t.Helper()
	diags, err := CheckSource(token.NewFileSet(), "src.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestFlagsRawMapLiteral(t *testing.T) {
	src := `package x
import "repro/internal/props"
var m = map[string]props.Value{"type": props.StringVal("node")}
`
	if got := check(t, src); len(got) != 1 {
		t.Fatalf("diagnostics = %v, want 1", got)
	}
}

func TestFlagsRawMapMake(t *testing.T) {
	src := `package x
import "repro/internal/props"
func f() { _ = make(map[string]props.Value, 4) }
`
	if got := check(t, src); len(got) != 1 {
		t.Fatalf("diagnostics = %v, want 1", got)
	}
}

func TestFlagsAliasedImport(t *testing.T) {
	src := `package x
import pp "repro/internal/props"
var m = map[string]pp.Value{}
`
	if got := check(t, src); len(got) != 1 {
		t.Fatalf("diagnostics = %v, want 1", got)
	}
}

func TestFlagsFacadeValue(t *testing.T) {
	src := `package x
import "repro"
func f() { _ = make(map[string]tgraph.Value) }
`
	if got := check(t, src); len(got) != 1 {
		t.Fatalf("diagnostics = %v, want 1", got)
	}
}

func TestAllowsAPIUsage(t *testing.T) {
	src := `package x
import "repro/internal/props"
var p = props.New("type", "node")
func f() props.Props {
	var b props.Builder
	b.Set("k", props.Int(1))
	return b.Build()
}
var other = map[string]int{"a": 1}
var unrelated = map[string]props.Kind{}
`
	if got := check(t, src); len(got) != 0 {
		t.Fatalf("diagnostics = %v, want none", got)
	}
}

func TestIgnoresFilesWithoutPropsImport(t *testing.T) {
	src := `package x
type Value struct{}
var m = map[string]Value{}
`
	if got := check(t, src); len(got) != 0 {
		t.Fatalf("diagnostics = %v, want none", got)
	}
}

func TestCheckDirSkipsExemptAndFlagsRest(t *testing.T) {
	root := t.TempDir()
	bad := `package a
import "repro/internal/props"
var m = map[string]props.Value{}
`
	exempt := `package props
import "repro/internal/props"
var m = map[string]props.Value{}
`
	write := func(rel, src string) {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("internal/core/a.go", bad)
	write("internal/props/p.go", exempt)
	diags, err := CheckDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly the internal/core violation", diags)
	}
	if filepath.ToSlash(diags[0].Pos.Filename) != filepath.ToSlash(filepath.Join(root, "internal/core/a.go")) {
		t.Fatalf("flagged %s, want internal/core/a.go", diags[0].Pos.Filename)
	}
}

// TestRepositoryIsClean runs the checker over the repository itself:
// the rule the lint enforces must hold in the codebase that ships it.
func TestRepositoryIsClean(t *testing.T) {
	diags, err := CheckDir("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func checkDocs(t *testing.T, src string) []Diagnostic {
	t.Helper()
	diags, err := CheckDocsSource(token.NewFileSet(), "src.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestDocsFlagsUndocumentedExports(t *testing.T) {
	src := `package x
func Exported() {}
type Thing struct{}
func (t Thing) Method() {}
const Answer = 42
var Global int
`
	got := checkDocs(t, src)
	if len(got) != 5 {
		t.Fatalf("diagnostics = %v, want 5", got)
	}
}

func TestDocsAcceptsDocumentedAndUnexported(t *testing.T) {
	src := `package x
// Exported does things.
func Exported() {}

// Thing is a thing.
type Thing struct{}

// Method acts.
func (t *Thing) Method() {}

// Grouped constants share one doc.
const (
	A = 1
	B = 2
)

var internal int
func helper() {}
`
	if got := checkDocs(t, src); len(got) != 0 {
		t.Fatalf("diagnostics = %v, want none", got)
	}
}

func TestDocsSkipsInterfaceMethodsOnUnexportedTypes(t *testing.T) {
	src := `package x
type wrapper struct{}
func (w *wrapper) Error() string { return "" }
func (w *wrapper) Write(p []byte) (int, error) { return len(p), nil }
type box[T any] struct{}
func (b box[T]) Get() T { var z T; return z }
`
	if got := checkDocs(t, src); len(got) != 0 {
		t.Fatalf("diagnostics = %v, want none", got)
	}
}

// TestRepositoryDocsAreClean runs the doc-coverage checker over the
// repository itself: the enforced packages must stay fully documented.
func TestRepositoryDocsAreClean(t *testing.T) {
	diags, err := CheckDocs("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
