// Package lint implements the repository's custom static checks:
//
//   - property-runtime encapsulation: property sets must be built
//     through the props package API (props.New, Builder, With...),
//     never as raw map[string]props.Value values. Outside
//     internal/props a raw property map bypasses key interning and the
//     immutability guarantee, so any construction of one — composite
//     literal or make — is a violation (CheckDir/CheckSource);
//   - godoc coverage: every exported top-level symbol in the packages
//     listed in docDirs must carry a doc comment, so the storage/scan
//     API documented in DESIGN.md stays documented at the source level
//     (CheckDocs).
//
// The checkers are purely syntactic (go/parser + go/ast, no type
// checking), which keeps them dependency-free and fast; the map check
// recognises the value type through any import alias of the props
// package or the tgraph facade.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Import paths whose Value type makes a map[string]Value a raw
// property map, mapped to the package name an unaliased import binds
// (the facade's package name, tgraph, differs from its path).
var valueProviders = map[string]string{
	"repro/internal/props": "props",  // props.Value
	"repro":                "tgraph", // tgraph.Value (alias of props.Value)
}

// exemptDirs are directory prefixes (relative to the repo root, slash
// separated) the rule does not apply to: the props package owns the
// representation, and ToMap/FromMap legitimately traffic in raw maps
// there.
var exemptDirs = []string{"internal/props"}

// Diagnostic is one rule violation.
type Diagnostic struct {
	Pos     token.Position
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s", d.Pos, d.Message)
}

// CheckDir walks root and checks every non-exempt .go file, returning
// the violations sorted in walk order. The error return is reserved
// for I/O and parse failures.
func CheckDir(root string) ([]Diagnostic, error) {
	var diags []Diagnostic
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		rel = filepath.ToSlash(rel)
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			for _, ex := range exemptDirs {
				if rel == ex {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		src, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		fds, perr := CheckSource(fset, path, src)
		if perr != nil {
			return perr
		}
		diags = append(diags, fds...)
		return nil
	})
	return diags, err
}

// CheckSource checks one file's source text (the unit CheckDir applies
// per file, exposed for tests).
func CheckSource(fset *token.FileSet, filename string, src []byte) ([]Diagnostic, error) {
	f, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	// Local names under which a property-value provider is imported:
	// "props" for the usual import, plus any alias.
	aliases := map[string]bool{}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		pkgName, ok := valueProviders[path]
		if !ok {
			continue
		}
		if imp.Name != nil {
			aliases[imp.Name.Name] = true
		} else {
			aliases[pkgName] = true
		}
	}
	if len(aliases) == 0 {
		return nil, nil
	}
	var diags []Diagnostic
	report := func(n ast.Node, msg string) {
		diags = append(diags, Diagnostic{Pos: fset.Position(n.Pos()), Message: msg})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if isRawPropMap(n.Type, aliases) {
				report(n, "raw property-map literal; build property sets with props.New or props.Builder")
			}
		case *ast.CallExpr:
			fn, ok := n.Fun.(*ast.Ident)
			if ok && fn.Name == "make" && len(n.Args) > 0 && isRawPropMap(n.Args[0], aliases) {
				report(n, "raw property-map make; build property sets with props.New or props.Builder")
			}
		}
		return true
	})
	return diags, nil
}

// docDirs are directory prefixes (relative to the repo root, slash
// separated) whose packages must document every exported top-level
// symbol; the walk is recursive, so internal/storage covers
// internal/storage/wal (the write-ahead log's record framing and
// recovery contract) too. The storage package is the reference
// implementation of the on-disk format and the scan engine; serve and
// resil are the operational surface (endpoints, headers, admission and
// degradation semantics) documented in DESIGN.md — their godoc is
// treated as part of that documentation. incr holds the materialized
// zoom views whose patch-vs-fallback rules DESIGN.md specifies; its
// godoc must state those contracts next to the code that enforces
// them.
var docDirs = []string{"internal/storage", "internal/serve", "internal/resil", "internal/incr", "internal/shard"}

// CheckDocs walks the docDirs under root and reports every exported
// top-level symbol (func, method, type, const, var) that has no doc
// comment. A doc comment on a grouped declaration covers the whole
// group. Test files are exempt.
func CheckDocs(root string) ([]Diagnostic, error) {
	var diags []Diagnostic
	fset := token.NewFileSet()
	for _, dir := range docDirs {
		err := filepath.WalkDir(filepath.Join(root, dir), func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			src, rerr := os.ReadFile(path)
			if rerr != nil {
				return rerr
			}
			fds, perr := CheckDocsSource(fset, path, src)
			if perr != nil {
				return perr
			}
			diags = append(diags, fds...)
			return nil
		})
		if err != nil {
			return diags, err
		}
	}
	return diags, nil
}

// CheckDocsSource checks one file's source text for undocumented
// exported symbols (the unit CheckDocs applies per file, exposed for
// tests).
func CheckDocsSource(fset *token.FileSet, filename string, src []byte) ([]Diagnostic, error) {
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var diags []Diagnostic
	report := func(n ast.Node, kind, name string) {
		diags = append(diags, Diagnostic{
			Pos:     fset.Position(n.Pos()),
			Message: fmt.Sprintf("exported %s %s has no doc comment", kind, name),
		})
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			kind := "function"
			if d.Recv != nil {
				// Methods are part of the documented API only when
				// their receiver type is itself exported; exported
				// method names on unexported types (Error, Write, …)
				// just satisfy interfaces.
				if !ast.IsExported(receiverTypeName(d.Recv)) {
					continue
				}
				kind = "method"
			}
			report(d, kind, d.Name.Name)
		case *ast.GenDecl:
			if d.Doc != nil {
				continue // a group doc covers every spec in the group
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil {
						report(s, "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							report(s, d.Tok.String(), name.Name)
							break
						}
					}
				}
			}
		}
	}
	return diags, nil
}

// receiverTypeName extracts the base type name of a method receiver
// ("T" from T, *T, T[P] or *T[P]); empty when the shape is unexpected.
func receiverTypeName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	expr := recv.List[0].Type
	if star, ok := expr.(*ast.StarExpr); ok {
		expr = star.X
	}
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// isRawPropMap reports whether expr is the type map[string]P.Value for
// an imported property-value provider P.
func isRawPropMap(expr ast.Expr, aliases map[string]bool) bool {
	m, ok := expr.(*ast.MapType)
	if !ok {
		return false
	}
	k, ok := m.Key.(*ast.Ident)
	if !ok || k.Name != "string" {
		return false
	}
	sel, ok := m.Value.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Value" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && aliases[pkg.Name]
}
