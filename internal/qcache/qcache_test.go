package qcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestKeyCanonical(t *testing.T) {
	if Key("ab", "c") == Key("a", "bc") {
		t.Error("length prefixing failed: shifted parts collide")
	}
	if Key("x") != Key("x") {
		t.Error("key not deterministic")
	}
	if Key() == Key("") {
		t.Error("zero parts and one empty part must differ")
	}
}

func TestDoMissThenHit(t *testing.T) {
	c := New(1 << 20)
	calls := 0
	compute := func() (any, int64, error) {
		calls++
		return "result", 6, nil
	}
	v, out, err := c.Do("k", compute)
	if err != nil || v != "result" || out != Miss {
		t.Fatalf("first Do = %v, %v, %v; want result, miss, nil", v, out, err)
	}
	v, out, err = c.Do("k", compute)
	if err != nil || v != "result" || out != Hit {
		t.Fatalf("second Do = %v, %v, %v; want result, hit, nil", v, out, err)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	if got, ok := c.Get("k"); !ok || got != "result" {
		t.Errorf("Get = %v, %v", got, ok)
	}
}

// N concurrent identical requests execute the computation exactly once:
// one caller reports Miss, the rest Shared, and every caller gets the
// value.
func TestSingleflightDedup(t *testing.T) {
	c := New(1 << 20)
	const n = 24
	var calls atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	outcomes := map[Outcome]int{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, out, err := c.Do("same", func() (any, int64, error) {
				calls.Add(1)
				<-gate // hold every other caller in the flight
				return 42, 8, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %v, %v", v, err)
			}
			mu.Lock()
			outcomes[out]++
			mu.Unlock()
		}()
	}
	// Wait until the one computation is in flight, then release it. The
	// remaining goroutines either joined the flight (Shared) or arrive
	// after completion (Hit); none may compute again.
	for calls.Load() == 0 {
	}
	close(gate)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", calls.Load())
	}
	if outcomes[Miss] != 1 {
		t.Errorf("outcomes = %v, want exactly one miss", outcomes)
	}
	if outcomes[Shared]+outcomes[Hit] != n-1 {
		t.Errorf("outcomes = %v, want %d shared+hit", outcomes, n-1)
	}
}

func TestErrorsAreSharedButNotCached(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	calls := 0
	fail := func() (any, int64, error) {
		calls++
		return nil, 0, boom
	}
	if _, out, err := c.Do("k", fail); !errors.Is(err, boom) || out != Miss {
		t.Fatalf("Do = %v, %v", out, err)
	}
	// The failure was not cached: the next Do computes again.
	if _, out, err := c.Do("k", fail); !errors.Is(err, boom) || out != Miss {
		t.Fatalf("Do after error = %v, %v", out, err)
	}
	if calls != 2 {
		t.Errorf("compute ran %d times, want 2", calls)
	}
	if c.Len() != 0 {
		t.Errorf("error cached: %d entries", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(30)
	put := func(k string) {
		c.Do(k, func() (any, int64, error) { return k, 10, nil })
	}
	put("a")
	put("b")
	put("c") // full: 30 bytes
	c.Get("a")
	put("d") // evicts b (least recently used)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should be resident", k)
		}
	}
	if c.Bytes() != 30 || c.Len() != 3 {
		t.Errorf("bytes = %d entries = %d, want 30, 3", c.Bytes(), c.Len())
	}
}

func TestOversizedValueNotResident(t *testing.T) {
	c := New(10)
	v, out, err := c.Do("big", func() (any, int64, error) { return "huge", 100, nil })
	if err != nil || v != "huge" || out != Miss {
		t.Fatalf("Do = %v, %v, %v", v, out, err)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Errorf("oversized value resident: %d entries, %d bytes", c.Len(), c.Bytes())
	}
}

func TestInvalidatePrefix(t *testing.T) {
	c := New(1 << 20)
	for _, k := range []string{"g1|a", "g1|b", "g2|a"} {
		c.Do(k, func() (any, int64, error) { return k, 4, nil })
	}
	if n := c.InvalidatePrefix("g1|"); n != 2 {
		t.Errorf("invalidated %d, want 2", n)
	}
	if _, ok := c.Get("g1|a"); ok {
		t.Error("g1|a survived invalidation")
	}
	if _, ok := c.Get("g2|a"); !ok {
		t.Error("g2|a wrongly invalidated")
	}
	if c.Len() != 1 {
		t.Errorf("entries = %d, want 1", c.Len())
	}
}

func TestPanicWakesSharers(t *testing.T) {
	c := New(1 << 20)
	started := make(chan struct{})
	release := make(chan struct{})
	holderDone := make(chan struct{})
	go func() {
		defer close(holderDone)
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the computing caller")
			}
		}()
		c.Do("k", func() (any, int64, error) {
			close(started)
			<-release
			panic("kaboom")
		})
	}()
	<-started // the flight is registered before compute runs
	sharerErr := make(chan error, 1)
	go func() {
		_, _, err := c.Do("k", func() (any, int64, error) { return "recomputed", 10, nil })
		sharerErr <- err
	}()
	// Let the sharer join the in-flight computation, then trip the
	// panic. If scheduling makes the sharer arrive after the flight is
	// gone it recomputes successfully — also correct; what must never
	// happen is a hang or a surfaced panic on the sharer.
	time.Sleep(10 * time.Millisecond)
	close(release)
	<-holderDone
	if err := <-sharerErr; err != nil && !errors.Is(err, ErrComputePanicked) {
		t.Errorf("sharer err = %v, want nil or ErrComputePanicked", err)
	}
}

// Hammer the cache from many goroutines (meaningful under -race).
func TestConcurrentMixedUse(t *testing.T) {
	c := New(200)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				k := fmt.Sprintf("g%d|%d", j%3, j%17)
				c.Do(k, func() (any, int64, error) { return j, 10, nil })
				c.Get(k)
				if j%50 == 0 {
					c.InvalidatePrefix(fmt.Sprintf("g%d|", i%3))
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Bytes() > 200 {
		t.Errorf("size bound violated: %d bytes", c.Bytes())
	}
}
