package qcache

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// A sharer whose context is cancelled while the leader computes gets
// its context error promptly — long before the leader finishes — and
// the leader's result is still computed once and cached.
func TestSharerCancellationPromptAndLeaderCaches(t *testing.T) {
	c := New(1 << 20)
	leaderStarted := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, outcome, err := c.DoCtx(context.Background(), "k", func() (any, int64, error) {
			close(leaderStarted)
			<-release
			return []byte("value"), 5, nil
		})
		if outcome != Miss {
			t.Errorf("leader outcome = %v, want Miss", outcome)
		}
		leaderDone <- err
	}()
	<-leaderStarted

	ctx, cancel := context.WithCancel(context.Background())
	sharerDone := make(chan struct{})
	var sharerErr error
	var sharerOutcome Outcome
	go func() {
		defer close(sharerDone)
		_, sharerOutcome, sharerErr = c.DoCtx(ctx, "k", func() (any, int64, error) {
			t.Error("sharer executed the computation")
			return nil, 0, nil
		})
	}()
	// Let the sharer join the flight, then cancel it while the leader is
	// still parked. (If scheduling delays the sharer past the cancel, it
	// joins with an already-cancelled context and returns the same way.)
	cancelledBefore := c.sharersCancelled.Value()
	time.Sleep(5 * time.Millisecond)
	cancel()

	select {
	case <-sharerDone:
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled sharer did not return while the leader was computing")
	}
	if !errors.Is(sharerErr, context.Canceled) {
		t.Errorf("sharer err = %v, want context.Canceled", sharerErr)
	}
	if sharerOutcome != Shared {
		t.Errorf("sharer outcome = %v, want Shared", sharerOutcome)
	}
	if got := c.sharersCancelled.Value() - cancelledBefore; got != 1 {
		t.Errorf("qcache.sharers_cancelled advanced by %d, want 1", got)
	}

	// The leader is unaffected: it completes and its result is cached.
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader err = %v", err)
	}
	if v, ok := c.Get("k"); !ok || string(v.([]byte)) != "value" {
		t.Errorf("leader result not cached: %v %v", v, ok)
	}
}

// Cancelling a sharer leaks no goroutine: after the leader finishes,
// the goroutine count returns to its pre-test level.
func TestSharerCancellationNoGoroutineLeak(t *testing.T) {
	c := New(1 << 20)
	before := runtime.NumGoroutine()

	leaderStarted := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.DoCtx(context.Background(), "leak", func() (any, int64, error) {
			close(leaderStarted)
			<-release
			return 1, 1, nil
		})
	}()
	<-leaderStarted

	// Many sharers, all cancelled mid-flight.
	const sharers = 16
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < sharers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := c.DoCtx(ctx, "leak", func() (any, int64, error) { return 1, 1, nil })
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("sharer err = %v", err)
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	cancel()
	close(release)
	wg.Wait()

	// The runtime reuses goroutines lazily; poll until the count falls
	// back to (at most) where it started.
	waitUntil(t, func() bool { return runtime.NumGoroutine() <= before })
}

// A cancelled sharer does not poison the flight for later callers: the
// next DoCtx after completion is a Hit with the leader's value.
func TestSharerCancellationDoesNotPoisonKey(t *testing.T) {
	c := New(1 << 20)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.DoCtx(context.Background(), "k", func() (any, int64, error) {
			close(started)
			<-release
			return "good", 4, nil
		})
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, _, err := c.DoCtx(ctx, "k", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("sharer err = %v, want deadline exceeded", err)
	}
	close(release)
	<-done
	v, outcome, err := c.DoCtx(context.Background(), "k", func() (any, int64, error) {
		return nil, 0, fmt.Errorf("must not recompute")
	})
	if err != nil || outcome != Hit || v != "good" {
		t.Errorf("post-cancel call = (%v, %v, %v), want (good, Hit, nil)", v, outcome, err)
	}
}

// waitUntil polls cond for up to 2s.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
