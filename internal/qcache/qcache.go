// Package qcache is a size-bounded, singleflight-deduplicating LRU
// cache for zoom query results. It is the result-reuse layer under the
// serving stack (internal/serve) and the library facade: entries are
// keyed by a canonical fingerprint of (graph identity, operator chain,
// specs) built with Key, values are opaque immutable results measured
// in bytes, and N concurrent requests for the same missing key trigger
// exactly one computation — the rest block and share its result.
//
// The cache reports to the process-wide obs registry:
//
//	qcache.hits          result served from the cache
//	qcache.shared        result shared from an in-flight computation
//	qcache.misses        computations executed
//	qcache.evictions     entries evicted by the size bound
//	qcache.invalidations entries dropped by InvalidatePrefix
//	qcache.patches       bodies refreshed in place by Patch
//	qcache.sharers_cancelled sharers that stopped waiting (DoCtx)
//	qcache.bytes         resident value bytes (gauge, all caches)
//	qcache.entries       resident entries (gauge, all caches)
package qcache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"strings"
	"sync"

	"repro/internal/obs"
)

// ErrComputePanicked is the error sharers of a flight receive when the
// computing call panicked: the panic propagates on the computing
// goroutine, and everyone waiting on it gets this instead of hanging.
var ErrComputePanicked = errors.New("qcache: shared computation panicked")

// Outcome classifies how Do obtained its result.
type Outcome int

const (
	// Miss: this call executed the computation.
	Miss Outcome = iota
	// Hit: the result was already resident in the cache.
	Hit
	// Shared: another in-flight call was computing the same key; this
	// call blocked and shares its result.
	Shared
	// Patched: the resident result was produced by Patch — incremental
	// view maintenance refreshed the body in place instead of the entry
	// being recomputed after an invalidation.
	Patched
)

// String renders the outcome as a wire-friendly token ("miss", "hit",
// "shared", "patched") — the serving layer exposes it in a response
// header.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	case Patched:
		return "patched"
	default:
		return "miss"
	}
}

// entry is one resident cache value.
type entry struct {
	key  string
	val  any
	size int64
	// patched marks a body written by Patch rather than computed by a
	// flight; hits on it report Outcome Patched.
	patched bool
}

// flight is one in-progress computation other callers may join.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// Cache is the LRU + singleflight store. The zero value is not usable;
// construct with New. All methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used; values are *entry
	items    map[string]*list.Element
	flights  map[string]*flight

	hits             *obs.Counter
	shared           *obs.Counter
	misses           *obs.Counter
	evictions        *obs.Counter
	invalidations    *obs.Counter
	patches          *obs.Counter
	sharersCancelled *obs.Counter
	bytesGauge       *obs.Gauge
	entriesGauge     *obs.Gauge
}

// New returns a cache bounded to maxBytes of resident value bytes
// (entry sizes are caller-declared). maxBytes <= 0 disables residency:
// every Do computes (after deduplication) and nothing is retained.
func New(maxBytes int64) *Cache {
	r := obs.Default()
	return &Cache{
		maxBytes:         maxBytes,
		ll:               list.New(),
		items:            make(map[string]*list.Element),
		flights:          make(map[string]*flight),
		hits:             r.Counter("qcache.hits"),
		shared:           r.Counter("qcache.shared"),
		misses:           r.Counter("qcache.misses"),
		evictions:        r.Counter("qcache.evictions"),
		invalidations:    r.Counter("qcache.invalidations"),
		patches:          r.Counter("qcache.patches"),
		sharersCancelled: r.Counter("qcache.sharers_cancelled"),
		bytesGauge:       r.Gauge("qcache.bytes"),
		entriesGauge:     r.Gauge("qcache.entries"),
	}
}

// Key fingerprints an ordered list of canonical string parts into a
// fixed-length hex digest. Parts are length-prefixed before hashing so
// ("ab","c") and ("a","bc") cannot collide.
func Key(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Get returns the resident value for key, refreshing its recency. It
// never joins an in-flight computation; use Do for that.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*entry).val, true
	}
	return nil, false
}

// Patch inserts or replaces the resident value for key in place,
// marking it so hits report Outcome Patched. It is the maintenance-side
// counterpart of InvalidatePrefix: when incremental view maintenance
// (internal/incr) can produce the post-delta body directly, the serving
// layer patches the entry under the new version key instead of letting
// the next query recompute from a cold miss. Patch bypasses
// singleflight — it never joins or cancels a flight; a racing computed
// insert for the same key simply overwrites the body (both are valid
// post-delta results). It reports whether the value became resident
// (false when residency is disabled or the value exceeds the budget).
func (c *Cache) Patch(key string, val any, size int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if size < 0 {
		size = 0
	}
	if c.maxBytes <= 0 || size > c.maxBytes {
		return false
	}
	c.insertLocked(key, val, size)
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).patched = true
	}
	c.patches.Add(1)
	return true
}

// Do returns the value for key, computing it at most once across
// concurrent callers: a resident value is returned immediately (Hit);
// if another call is computing the key, Do blocks and shares its
// result or error (Shared); otherwise Do runs compute (Miss), inserts
// the value sized at the returned byte count, and wakes the sharers.
// Compute errors are shared with waiters but never cached.
func (c *Cache) Do(key string, compute func() (any, int64, error)) (any, Outcome, error) {
	return c.DoCtx(context.Background(), key, compute)
}

// DoCtx is Do with sharer cancellation: ctx bounds only the waiting. A
// caller that becomes a sharer and whose ctx ends while the leader is
// still computing stops waiting and returns ctx's error promptly (with
// Outcome Shared and a nil value); the leader is unaffected — it
// ignores ctx, finishes the computation, and its result is cached for
// future callers as usual. The leader's own compute is NOT cancelled by
// ctx; bound it inside compute if needed.
func (c *Cache) DoCtx(ctx context.Context, key string, compute func() (any, int64, error)) (any, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		ent := el.Value.(*entry)
		out := Hit
		if ent.patched {
			out = Patched
		}
		c.mu.Unlock()
		return ent.val, out, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			c.sharersCancelled.Add(1)
			return nil, Shared, ctx.Err()
		}
		c.shared.Add(1)
		return f.val, Shared, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	completed := false
	defer func() {
		// Never strand the sharers: if compute panicked, wake them with
		// no value before the panic unwinds.
		if !completed {
			c.mu.Lock()
			delete(c.flights, key)
			c.mu.Unlock()
			f.err = ErrComputePanicked
			close(f.done)
		}
	}()
	val, size, err := compute()
	completed = true

	c.mu.Lock()
	delete(c.flights, key)
	if err == nil {
		c.insertLocked(key, val, size)
	}
	c.mu.Unlock()
	f.val, f.err = val, err
	close(f.done)
	c.misses.Add(1)
	return val, Miss, err
}

// insertLocked adds a computed value and enforces the size bound.
// Values larger than the whole budget are returned to the caller but
// never resident.
func (c *Cache) insertLocked(key string, val any, size int64) {
	if size < 0 {
		size = 0
	}
	if c.maxBytes <= 0 || size > c.maxBytes {
		return
	}
	if el, ok := c.items[key]; ok {
		// A racing Invalidate + recompute can land here; replace in
		// place. A computed body also clears the patched provenance.
		old := el.Value.(*entry)
		c.bytes -= old.size
		c.bytesGauge.Add(-old.size)
		old.val, old.size, old.patched = val, size, false
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&entry{key: key, val: val, size: size})
		c.items[key] = el
		c.entriesGauge.Add(1)
	}
	c.bytes += size
	c.bytesGauge.Add(size)
	for c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions.Add(1)
	}
}

// removeLocked drops one resident entry.
func (c *Cache) removeLocked(el *list.Element) {
	ent := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.bytes -= ent.size
	c.bytesGauge.Add(-ent.size)
	c.entriesGauge.Add(-1)
}

// InvalidatePrefix drops every resident entry whose key begins with
// prefix, returning how many were dropped. The serving layer keys
// entries as "<graph>|<fingerprint>" so a graph whose manifest epoch
// changed can be flushed with InvalidatePrefix("<graph>|").
func (c *Cache) InvalidatePrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var doomed []*list.Element
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if strings.HasPrefix(el.Value.(*entry).key, prefix) {
			doomed = append(doomed, el)
		}
	}
	for _, el := range doomed {
		c.removeLocked(el)
	}
	c.invalidations.Add(int64(len(doomed)))
	return len(doomed)
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Bytes returns the resident value bytes.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
