package faults

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/obs"
	"repro/internal/props"
	"repro/internal/storage"
	"repro/internal/temporal"
)

// The chaos suite (make chaos) runs these tests under -race -count=2
// with the fixed seeds below. The invariants under injected faults:
//
//  1. a job either completes with the correct result or fails with a
//     clean typed error (*dataflow.JobError unwrapping to the injected
//     *Error or a context error) — panics never escape the guard;
//  2. no run deadlocks (the tests finishing is the proof);
//  3. the dataflow.workers_busy gauge returns to zero after every run.
var chaosSeeds = []int64{11, 23}

// checkBusy asserts the worker-occupancy gauge returned to its
// pre-run value.
func checkBusy(t *testing.T, before int64) {
	t.Helper()
	if got := obs.Default().Gauge("dataflow.workers_busy").Value(); got != before {
		t.Errorf("workers_busy = %d after run, want %d", got, before)
	}
}

// requireTypedOrNil asserts err is nil or a *dataflow.JobError that
// unwraps to an injected fault or a context error, and returns the
// JobError (nil on success).
func requireTypedOrNil(t *testing.T, err error) *dataflow.JobError {
	t.Helper()
	if err == nil {
		return nil
	}
	var je *dataflow.JobError
	if !errors.As(err, &je) {
		t.Fatalf("err = %T (%v), want *dataflow.JobError", err, err)
	}
	var fe *Error
	if !errors.As(err, &fe) && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		t.Fatalf("JobError does not unwrap to an injected fault or context error: %v", err)
	}
	return je
}

// TestChaosDataflowPanics injects hard panics across all engine stages
// of a shuffle-heavy pipeline and checks the failure contract.
func TestChaosDataflowPanics(t *testing.T) {
	data := make([]int, 512)
	for i := range data {
		data[i] = i
	}
	// Fault-free baseline: doubled values are even, so v % 16 takes the
	// 8 even residues.
	wantGroups := 8

	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			inj := New(seed, Rule{Site: "dataflow.", Kind: Panic, Prob: 0.02})
			ctx := dataflow.NewContext(
				dataflow.WithParallelism(4),
				dataflow.WithFaultHook(inj.Hook()),
			)
			busyBefore := obs.Default().Gauge("dataflow.workers_busy").Value()
			var groups int
			err := ctx.Run(func() error {
				d := dataflow.Parallelize(ctx, data, 16)
				doubled := dataflow.Map(d, func(v int) int { return v * 2 })
				keyed := dataflow.GroupByKey(doubled, func(v int) int { return v % 16 })
				groups = keyed.Count()
				return nil
			})
			checkBusy(t, busyBefore)
			je := requireTypedOrNil(t, err)
			if je == nil {
				if groups != wantGroups {
					t.Errorf("fault-free completion produced %d groups, want %d", groups, wantGroups)
				}
				return
			}
			if len(je.FailedPartitions()) == 0 && je.Cancel == nil {
				t.Errorf("JobError names no failed partitions and no cancellation: %v", je)
			}
			for _, te := range je.Tasks {
				var fe *Error
				if !errors.As(te.Err, &fe) {
					t.Errorf("partition %d failed with %v, want an injected *faults.Error", te.Partition, te.Err)
				}
			}
		})
	}
}

// TestChaosTransientRetryCompletes injects transient faults at a
// cadence the retry policy is guaranteed to absorb (serial execution,
// Every ≥ 2, so retry attempts — the hit immediately after a fired one
// — can never fire again) and checks the job completes correctly with
// the retries visible in the metrics.
func TestChaosTransientRetryCompletes(t *testing.T) {
	data := make([]int, 256)
	sum := 0
	for i := range data {
		data[i] = i
		sum += 2 * i
	}
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			inj := New(seed, Rule{Site: "dataflow.", Kind: Transient, Every: 4})
			ctx := dataflow.NewContext(
				dataflow.WithParallelism(1),
				dataflow.WithFaultHook(inj.Hook()),
				dataflow.WithRetry(dataflow.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond}),
			)
			busyBefore := obs.Default().Gauge("dataflow.workers_busy").Value()
			got := 0
			err := ctx.Run(func() error {
				d := dataflow.Parallelize(ctx, data, 32)
				doubled := dataflow.Map(d, func(v int) int { return 2 * v })
				for _, v := range doubled.Collect() {
					got += v
				}
				return nil
			})
			checkBusy(t, busyBefore)
			if err != nil {
				t.Fatalf("retry policy should absorb Every=4 transients: %v", err)
			}
			if got != sum {
				t.Errorf("sum = %d, want %d", got, sum)
			}
			if inj.InjectedTotal() == 0 {
				t.Fatal("injector never fired; the chaos run tested nothing")
			}
			if m := ctx.Metrics(); m.TaskRetries != inj.InjectedTotal() {
				t.Errorf("TaskRetries = %d, want %d (one per injected transient)", m.TaskRetries, inj.InjectedTotal())
			} else if m.TaskFailures != 0 {
				t.Errorf("TaskFailures = %d, want 0", m.TaskFailures)
			}
		})
	}
}

// TestChaosDelaysHitDeadline slows every task down under a short
// deadline: the job must fail with DeadlineExceeded instead of running
// to completion, and must not deadlock or strand workers.
func TestChaosDelaysHitDeadline(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			inj := New(seed, Rule{Site: "dataflow.", Kind: Delay, Every: 1, Delay: 2 * time.Millisecond})
			ctx := dataflow.NewContext(
				dataflow.WithParallelism(2),
				dataflow.WithFaultHook(inj.Hook()),
				dataflow.WithTimeout(10*time.Millisecond),
			)
			defer ctx.Close()
			busyBefore := obs.Default().Gauge("dataflow.workers_busy").Value()
			err := ctx.Run(func() error {
				d := dataflow.Parallelize(ctx, make([]int, 128), 128)
				dataflow.Map(d, func(v int) int { return v })
				return nil
			})
			checkBusy(t, busyBefore)
			if err == nil {
				t.Fatal("128 delayed tasks finished inside a 10ms deadline")
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("err = %v, want DeadlineExceeded", err)
			}
			if m := ctx.Metrics(); m.TasksCancelled == 0 {
				t.Error("TasksCancelled = 0 after a deadline abort")
			}
		})
	}
}

// TestChaosZoomPipeline drives the paper's zoom operators under panic
// injection: every outcome must be a correct graph or a typed error
// from the entry point — never a panic, never a partial graph.
func TestChaosZoomPipeline(t *testing.T) {
	wspec := core.WZoomSpec{
		Window:   temporal.MustEveryN(2),
		VQuant:   temporal.All(),
		EQuant:   temporal.Exists(),
		VResolve: props.LastWins,
		EResolve: props.LastWins,
	}
	aspec := core.GroupByProperty("grp", "cluster", props.Count("n"))

	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			inj := New(seed, Rule{Site: "dataflow.", Kind: Panic, Prob: 0.01})
			ctx := dataflow.NewContext(
				dataflow.WithParallelism(4),
				dataflow.WithDefaultPartitions(4),
				dataflow.WithFaultHook(inj.Hook()),
			)
			g := core.NewVE(ctx, chaosVertices(120), chaosEdges(80))
			busyBefore := obs.Default().Gauge("dataflow.workers_busy").Value()

			for name, zoom := range map[string]func() (core.TGraph, error){
				"wzoom.VE": func() (core.TGraph, error) { return g.WZoom(wspec) },
				"azoom.VE": func() (core.TGraph, error) { return g.AZoom(aspec) },
				"wzoom.OG": func() (core.TGraph, error) { return core.ToOG(g).WZoom(wspec) },
				"convert":  func() (core.TGraph, error) { return core.Convert(g, core.RepRG) },
			} {
				out, err := func() (out core.TGraph, err error) {
					defer func() {
						if r := recover(); r != nil {
							t.Errorf("%s: panic escaped the zoom guard: %v", name, r)
						}
					}()
					return zoom()
				}()
				if err != nil {
					requireTypedOrNil(t, err)
					if out != nil {
						t.Errorf("%s: returned a graph alongside its error", name)
					}
				} else if out == nil {
					t.Errorf("%s: nil graph with nil error", name)
				}
			}
			checkBusy(t, busyBefore)
		})
	}
}

// TestChaosStorageCorruption corrupts chunks during reads: strict mode
// must reject the file with an integrity error, Permissive mode must
// return the surviving rows and account for every corrupted chunk.
func TestChaosStorageCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.pgc")
	const rows, chunkRows = 200, 32
	if err := storage.WriteVertices(path, chaosVertices(rows), storage.WriteOptions{ChunkRows: chunkRows}); err != nil {
		t.Fatal(err)
	}
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Strict: the first injected corruption aborts the read.
			strict := New(seed, Rule{Site: "storage.", Kind: Corrupt, Every: 2})
			if _, _, err := storage.ReadVerticesOpts(path, storage.ReadOptions{ChunkHook: strict.ChunkHook()}); err == nil {
				t.Error("strict read survived injected corruption")
			}

			// Permissive: corrupt chunks are skipped and counted.
			perm := New(seed, Rule{Site: "storage.", Kind: Corrupt, Every: 2})
			out, stats, err := storage.ReadVerticesOpts(path, storage.ReadOptions{
				Permissive: true,
				ChunkHook:  perm.ChunkHook(),
			})
			if err != nil {
				t.Fatalf("permissive read failed: %v", err)
			}
			injected := int(perm.InjectedTotal())
			if injected == 0 {
				t.Fatal("injector never corrupted a chunk")
			}
			if stats.ChunksCorrupt != injected {
				t.Errorf("ChunksCorrupt = %d, want %d (one per injected corruption)", stats.ChunksCorrupt, injected)
			}
			if len(out) >= rows {
				t.Errorf("permissive read returned %d rows, want fewer than %d", len(out), rows)
			}
			if min := rows - injected*chunkRows; len(out) < min {
				t.Errorf("permissive read returned %d rows, want at least %d", len(out), min)
			}
		})
	}
}

func chaosVertices(n int) []core.VertexTuple {
	out := make([]core.VertexTuple, n)
	for i := range out {
		s := temporal.Time(i % 20)
		out[i] = core.VertexTuple{
			ID:       core.VertexID(i),
			Interval: temporal.Interval{Start: s, End: s + 4},
			Props:    props.New("type", "node", "grp", i%5),
		}
	}
	return out
}

func chaosEdges(n int) []core.EdgeTuple {
	out := make([]core.EdgeTuple, n)
	for i := range out {
		s := temporal.Time(i % 20)
		out[i] = core.EdgeTuple{
			ID:       core.EdgeID(i),
			Src:      core.VertexID(i % 120),
			Dst:      core.VertexID((i + 1) % 120),
			Interval: temporal.Interval{Start: s, End: s + 3},
			Props:    props.New("type", "link", "w", i),
		}
	}
	return out
}

// TestChaosParallelScanCorruption proves the injection cadence is
// independent of scan parallelism: because chunk hooks fire during the
// scan engine's sequential survivor-selection phase, the same seed
// corrupts the same chunks whether decoding runs on one worker or
// many, and Permissive reads return identical survivors either way.
func TestChaosParallelScanCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.pgc")
	const rows, chunkRows = 200, 32
	if err := storage.WriteVertices(path, chaosVertices(rows), storage.WriteOptions{ChunkRows: chunkRows}); err != nil {
		t.Fatal(err)
	}
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			seqInj := New(seed, Rule{Site: "storage.", Kind: Corrupt, Every: 2})
			seq, seqStats, err := storage.ReadVerticesOpts(path, storage.ReadOptions{
				Permissive: true,
				ChunkHook:  seqInj.ChunkHook(),
				Scan:       storage.ScanOptions{Parallelism: 1},
			})
			if err != nil {
				t.Fatalf("sequential permissive read failed: %v", err)
			}
			if seqInj.InjectedTotal() == 0 {
				t.Fatal("injector never corrupted a chunk")
			}
			for _, par := range []int{2, 4, 8} {
				parInj := New(seed, Rule{Site: "storage.", Kind: Corrupt, Every: 2})
				got, gotStats, err := storage.ReadVerticesOpts(path, storage.ReadOptions{
					Permissive: true,
					ChunkHook:  parInj.ChunkHook(),
					Scan:       storage.ScanOptions{Parallelism: par},
				})
				if err != nil {
					t.Fatalf("parallelism %d: permissive read failed: %v", par, err)
				}
				if parInj.InjectedTotal() != seqInj.InjectedTotal() {
					t.Errorf("parallelism %d: injected %d corruptions, sequential injected %d",
						par, parInj.InjectedTotal(), seqInj.InjectedTotal())
				}
				if gotStats != seqStats {
					t.Errorf("parallelism %d: stats = %+v, want %+v", par, gotStats, seqStats)
				}
				if len(got) != len(seq) {
					t.Errorf("parallelism %d: %d surviving rows, sequential kept %d", par, len(got), len(seq))
				}
			}
		})
	}
}
