package faults

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/dataflow"
)

// Decisions must be a pure function of (seed, rule, hit): replaying the
// same hit sequence reproduces the same injections.
func TestInjectorDeterministic(t *testing.T) {
	sites := []string{"dataflow.map", "dataflow.shuffle-route", "storage.pgc.chunk"}
	run := func(seed int64) map[string]int64 {
		in := New(seed,
			Rule{Site: "dataflow.", Kind: Delay, Prob: 0.3},
			Rule{Site: "storage.", Kind: Corrupt, Every: 2},
		)
		hook := in.Hook()
		chunk := in.ChunkHook()
		for i := 0; i < 100; i++ {
			hook(sites[i%2], i)
			chunk(sites[2], []byte{1, 2, 3, 4})
		}
		return in.Injected()
	}
	a, b := run(7), run(7)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
	if len(a) == 0 {
		t.Error("no injections with Prob 0.3 over 100 hits")
	}
	if a["storage.pgc.chunk"] != 50 {
		t.Errorf("Every=2 over 100 hits injected %d, want 50", a["storage.pgc.chunk"])
	}
}

func TestRuleSitePrefixMatching(t *testing.T) {
	in := New(1, Rule{Site: "dataflow.shuffle", Kind: Delay, Every: 1})
	hook := in.Hook()
	hook("dataflow.shuffle-route", 0)
	hook("dataflow.shuffle-gather", 1)
	hook("dataflow.map", 2)
	hook("storage.pgc.chunk", 3)
	got := in.Injected()
	if got["dataflow.shuffle-route"] != 1 || got["dataflow.shuffle-gather"] != 1 {
		t.Errorf("shuffle sites not matched: %v", got)
	}
	if len(got) != 2 {
		t.Errorf("non-shuffle sites matched: %v", got)
	}
}

func TestPanicRuleCarriesTypedError(t *testing.T) {
	in := New(1, Rule{Kind: Panic, Every: 2})
	hook := in.Hook()
	hook("dataflow.map", 0) // hit 1: no fire
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Every=2 rule did not fire on hit 2")
		}
		fe, ok := r.(*Error)
		if !ok {
			t.Fatalf("panicked with %T, want *Error", r)
		}
		if fe.Site != "dataflow.map" || fe.Hit != 2 {
			t.Errorf("error = %+v, want site dataflow.map hit 2", fe)
		}
	}()
	hook("dataflow.map", 1)
}

func TestTransientRuleIsRetryable(t *testing.T) {
	in := New(1, Rule{Kind: Transient, Every: 1})
	hook := in.Hook()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("transient rule did not fire")
		}
		err, ok := r.(error)
		if !ok || !dataflow.IsTransient(err) {
			t.Fatalf("panicked with %v, want a transient error", r)
		}
		var fe *Error
		if !errors.As(err, &fe) {
			t.Errorf("transient does not unwrap to *Error: %v", err)
		}
	}()
	hook("dataflow.map", 0)
}

func TestDelayRuleSleeps(t *testing.T) {
	in := New(1, Rule{Kind: Delay, Every: 1, Delay: 5 * time.Millisecond})
	start := time.Now()
	in.Hook()("dataflow.map", 0)
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Errorf("hook returned after %v, want >= 5ms", d)
	}
}

// The chunk hook must corrupt a copy — the storage layer hands it the
// mmap-backed original.
func TestChunkHookCopiesBeforeCorrupting(t *testing.T) {
	in := New(9, Rule{Kind: Corrupt, Every: 1})
	orig := []byte{10, 20, 30, 40, 50}
	saved := append([]byte(nil), orig...)
	out := in.ChunkHook()("storage.pgc.chunk", orig)
	if !bytes.Equal(orig, saved) {
		t.Error("chunk hook mutated its input")
	}
	if bytes.Equal(out, saved) {
		t.Error("chunk hook did not corrupt the returned copy")
	}
	diff := 0
	for i := range out {
		if out[i] != saved[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes differ, want exactly 1", diff)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Panic: "panic", Transient: "transient", Delay: "delay", Corrupt: "corrupt", Kind(42): "Kind(42)"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

// The write hook fires Crash rules on the Every cadence with a typed
// *Error and counts the injections; non-Crash rules are invisible to it.
func TestWriteHookCrashCadence(t *testing.T) {
	in := New(7, Rule{Site: "storage.write.", Kind: Crash, Every: 3})
	hook := in.WriteHook()
	for hit := 1; hit <= 9; hit++ {
		err := hook("storage.write.rename")
		if hit%3 == 0 {
			var fe *Error
			if !errors.As(err, &fe) {
				t.Fatalf("hit %d: err = %v, want *Error", hit, err)
			}
			if fe.Site != "storage.write.rename" || fe.Hit != int64(hit) {
				t.Errorf("hit %d: fired with %+v", hit, fe)
			}
		} else if err != nil {
			t.Errorf("hit %d: unexpected crash %v", hit, err)
		}
	}
	if got := in.Injected()["storage.write.rename"]; got != 3 {
		t.Errorf("injected count = %d, want 3", got)
	}
}

// Crash rules respect the site prefix filter, and the other hooks
// ignore Crash rules entirely.
func TestWriteHookSiteFilterAndKindIsolation(t *testing.T) {
	in := New(7, Rule{Site: "storage.write.sync", Kind: Crash, Every: 1})
	hook := in.WriteHook()
	if err := hook("storage.write.create"); err != nil {
		t.Errorf("non-matching site crashed: %v", err)
	}
	if err := hook("storage.write.sync"); err == nil {
		t.Error("matching site did not crash")
	}

	// A Crash rule must not leak into the dataflow or chunk hooks.
	in2 := New(7, Rule{Kind: Crash, Every: 1})
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("dataflow hook panicked on a Crash rule: %v", r)
			}
		}()
		in2.Hook()("dataflow.map", 0)
	}()
	chunk := []byte{1, 2, 3}
	if out := in2.ChunkHook()("storage.pgc.chunk", chunk); !bytes.Equal(out, chunk) {
		t.Error("chunk hook honoured a Crash rule")
	}
	if n := in2.InjectedTotal(); n != 0 {
		t.Errorf("Crash rule injected %d faults outside the write hook", n)
	}

	// And the write hook ignores every other kind.
	in3 := New(7, Rule{Kind: Panic, Every: 1}, Rule{Kind: Corrupt, Every: 1}, Rule{Kind: Transient, Every: 1})
	if err := in3.WriteHook()("storage.write.rename"); err != nil {
		t.Errorf("write hook honoured a non-Crash rule: %v", err)
	}
}

// Crash has a String and the crash kind is deterministic across
// injector instances with the same seed and rules.
func TestWriteHookDeterministic(t *testing.T) {
	if got := Crash.String(); got != "crash" {
		t.Errorf("Crash.String() = %q", got)
	}
	run := func() []int {
		in := New(99, Rule{Site: "storage.write.", Kind: Crash, Prob: 0.5})
		hook := in.WriteHook()
		var fired []int
		for i := 0; i < 20; i++ {
			if hook("storage.write.short") != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 20 {
		t.Fatalf("prob rule fired %d/20 times; seed choice gives no signal", len(a))
	}
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			t.Fatalf("same seed fired at %v then %v", a, b)
		}
	}
	if len(a) != len(b) {
		t.Fatalf("same seed fired %d then %d times", len(a), len(b))
	}
}

// ServeHook: Transient rules surface as returned retryable errors,
// Panic rules panic with the typed *Error, and cadence is per rule.
func TestServeHookKinds(t *testing.T) {
	inj := New(7,
		Rule{Site: "serve.reload", Kind: Transient, Every: 2},
		Rule{Site: "serve.handler", Kind: Panic, Every: 1},
	)
	hook := inj.ServeHook()

	// Hits 1..4 at serve.reload: fires on 2 and 4.
	var errs []error
	for i := 0; i < 4; i++ {
		errs = append(errs, hook("serve.reload"))
	}
	if errs[0] != nil || errs[2] != nil {
		t.Errorf("odd hits fired: %v", errs)
	}
	for _, i := range []int{1, 3} {
		var fe *Error
		if !errors.As(errs[i], &fe) || !dataflow.IsTransient(errs[i]) {
			t.Errorf("hit %d: err = %v, want transient injected *Error", i+1, errs[i])
		}
	}

	// serve.handler panics with the typed error.
	func() {
		defer func() {
			r := recover()
			if fe, ok := r.(*Error); !ok || fe.Site != "serve.handler" {
				t.Errorf("recovered %v, want *Error at serve.handler", r)
			}
		}()
		hook("serve.handler")
		t.Error("panic rule did not panic")
	}()

	counts := inj.Injected()
	if counts["serve.reload"] != 2 || counts["serve.handler"] != 1 {
		t.Errorf("injected counts = %v", counts)
	}
}
