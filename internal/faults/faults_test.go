package faults

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/dataflow"
)

// Decisions must be a pure function of (seed, rule, hit): replaying the
// same hit sequence reproduces the same injections.
func TestInjectorDeterministic(t *testing.T) {
	sites := []string{"dataflow.map", "dataflow.shuffle-route", "storage.pgc.chunk"}
	run := func(seed int64) map[string]int64 {
		in := New(seed,
			Rule{Site: "dataflow.", Kind: Delay, Prob: 0.3},
			Rule{Site: "storage.", Kind: Corrupt, Every: 2},
		)
		hook := in.Hook()
		chunk := in.ChunkHook()
		for i := 0; i < 100; i++ {
			hook(sites[i%2], i)
			chunk(sites[2], []byte{1, 2, 3, 4})
		}
		return in.Injected()
	}
	a, b := run(7), run(7)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
	if len(a) == 0 {
		t.Error("no injections with Prob 0.3 over 100 hits")
	}
	if a["storage.pgc.chunk"] != 50 {
		t.Errorf("Every=2 over 100 hits injected %d, want 50", a["storage.pgc.chunk"])
	}
}

func TestRuleSitePrefixMatching(t *testing.T) {
	in := New(1, Rule{Site: "dataflow.shuffle", Kind: Delay, Every: 1})
	hook := in.Hook()
	hook("dataflow.shuffle-route", 0)
	hook("dataflow.shuffle-gather", 1)
	hook("dataflow.map", 2)
	hook("storage.pgc.chunk", 3)
	got := in.Injected()
	if got["dataflow.shuffle-route"] != 1 || got["dataflow.shuffle-gather"] != 1 {
		t.Errorf("shuffle sites not matched: %v", got)
	}
	if len(got) != 2 {
		t.Errorf("non-shuffle sites matched: %v", got)
	}
}

func TestPanicRuleCarriesTypedError(t *testing.T) {
	in := New(1, Rule{Kind: Panic, Every: 2})
	hook := in.Hook()
	hook("dataflow.map", 0) // hit 1: no fire
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Every=2 rule did not fire on hit 2")
		}
		fe, ok := r.(*Error)
		if !ok {
			t.Fatalf("panicked with %T, want *Error", r)
		}
		if fe.Site != "dataflow.map" || fe.Hit != 2 {
			t.Errorf("error = %+v, want site dataflow.map hit 2", fe)
		}
	}()
	hook("dataflow.map", 1)
}

func TestTransientRuleIsRetryable(t *testing.T) {
	in := New(1, Rule{Kind: Transient, Every: 1})
	hook := in.Hook()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("transient rule did not fire")
		}
		err, ok := r.(error)
		if !ok || !dataflow.IsTransient(err) {
			t.Fatalf("panicked with %v, want a transient error", r)
		}
		var fe *Error
		if !errors.As(err, &fe) {
			t.Errorf("transient does not unwrap to *Error: %v", err)
		}
	}()
	hook("dataflow.map", 0)
}

func TestDelayRuleSleeps(t *testing.T) {
	in := New(1, Rule{Kind: Delay, Every: 1, Delay: 5 * time.Millisecond})
	start := time.Now()
	in.Hook()("dataflow.map", 0)
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Errorf("hook returned after %v, want >= 5ms", d)
	}
}

// The chunk hook must corrupt a copy — the storage layer hands it the
// mmap-backed original.
func TestChunkHookCopiesBeforeCorrupting(t *testing.T) {
	in := New(9, Rule{Kind: Corrupt, Every: 1})
	orig := []byte{10, 20, 30, 40, 50}
	saved := append([]byte(nil), orig...)
	out := in.ChunkHook()("storage.pgc.chunk", orig)
	if !bytes.Equal(orig, saved) {
		t.Error("chunk hook mutated its input")
	}
	if bytes.Equal(out, saved) {
		t.Error("chunk hook did not corrupt the returned copy")
	}
	diff := 0
	for i := range out {
		if out[i] != saved[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes differ, want exactly 1", diff)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Panic: "panic", Transient: "transient", Delay: "delay", Corrupt: "corrupt", Kind(42): "Kind(42)"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
