// Package faults is a deterministic, seeded fault-injection harness for
// the execution stack. It plugs into the three injection points the
// stack exposes — dataflow.WithFaultHook (called at the start of every
// task attempt), storage.ReadOptions.ChunkHook (called with every
// chunk's raw bytes before integrity checks) and storage WriteOptions /
// SaveOptions FaultHook (called at every crash point of the atomic
// write path) — and injects panics, transient errors, delays, byte
// corruption, or simulated crashes according to declarative rules.
//
// Determinism: every decision is a pure function of (seed, site, hit
// index). Running the same workload twice with the same seed injects
// the same faults at the same sites, which is what lets the chaos tests
// (make chaos, make crash) run under -race with fixed seeds and still
// assert exact outcomes.
//
// Known sites:
//
//	dataflow.map, dataflow.flatmap, dataflow.filter, dataflow.foreach,
//	dataflow.mappartitions, dataflow.shuffle-route,
//	dataflow.shuffle-gather, dataflow.groupbykey, dataflow.reducebykey,
//	dataflow.join, dataflow.semijoin, dataflow.cogroup (task attempts);
//	storage.pgc.chunk, storage.pgn.chunk (chunk reads);
//	storage.write.create, storage.write.short, storage.write.sync,
//	storage.write.rename (atomic-write crash points);
//	storage.wal.append, storage.wal.sync, storage.wal.rotate,
//	storage.wal.compact (write-ahead-log durability points, reached
//	through wal.Options.Hook / storage.SaveOptions.FaultHook during
//	compaction);
//	serve.reload (the query service's stamp-check-and-reload path,
//	guarded by its circuit breaker), serve.handler (the start of every
//	query handler, upstream of the panic-recovery middleware) — both
//	reached through serve.Config.FaultHook / Injector.ServeHook;
//	incr.apply.azoom, incr.apply.wzoom (the start of view maintenance)
//	and incr.apply.commit (the last fallible step before a view commits
//	its staged patch) — reached through incr.Options.Hook, which also
//	accepts Injector.ServeHook.
//
// Rules match sites by prefix, so Site: "dataflow." targets every
// engine stage and Site: "storage.write." every write crash point.
package faults

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dataflow"
)

// Kind selects what a matching rule injects.
type Kind int

const (
	// Panic aborts the task attempt with a non-retryable *Error.
	Panic Kind = iota
	// Transient aborts the task attempt with a dataflow.Transient
	// *Error, exercising the retry path.
	Transient
	// Delay sleeps Rule.Delay before the task attempt proceeds.
	Delay
	// Corrupt flips one byte of the chunk in a storage ChunkHook
	// (ignored at dataflow sites, which carry no payload).
	Corrupt
	// Crash aborts a storage write at a storage.write.* site,
	// simulating a process crash at that instant: the write path skips
	// all cleanup, leaving staged temp files and torn writes on disk
	// exactly as a real crash would (only WriteHook honours it).
	Crash
)

func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Transient:
		return "transient"
	case Delay:
		return "delay"
	case Corrupt:
		return "corrupt"
	case Crash:
		return "crash"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Rule is one fault-injection rule.
type Rule struct {
	// Site is a prefix matched against the injection-site name
	// ("dataflow." matches every engine stage). Empty matches all.
	Site string
	// Kind is what to inject.
	Kind Kind
	// Every fires the rule on hits N, 2N, 3N, … of matching sites
	// (counted per rule, so one rule's cadence is independent of
	// another's). Exactly reproducible — preferred for tests asserting
	// counts.
	Every int
	// Prob fires the rule on each hit with this probability, decided
	// by a hash of (seed, rule, hit) — reproducible for a fixed seed,
	// but the count depends on how many hits occur. Used when
	// Every == 0.
	Prob float64
	// Delay is the sleep duration for Kind Delay.
	Delay time.Duration
}

// Error is the failure value injected by Panic and Transient rules.
type Error struct {
	// Site is where the fault fired.
	Site string
	// Hit is the per-rule hit index (1-based) that fired.
	Hit int64
}

func (e *Error) Error() string {
	return fmt.Sprintf("faults: injected failure at %s (hit %d)", e.Site, e.Hit)
}

// Injector evaluates rules at injection sites. Safe for concurrent use.
type Injector struct {
	seed  int64
	rules []Rule

	mu       sync.Mutex
	hits     []int64          // per-rule hit counts
	injected map[string]int64 // per-site injected-fault counts
}

// New returns an Injector with the given seed and rules.
func New(seed int64, rules ...Rule) *Injector {
	return &Injector{
		seed:     seed,
		rules:    rules,
		hits:     make([]int64, len(rules)),
		injected: make(map[string]int64),
	}
}

// splitmix64 is the SplitMix64 mixer — a cheap, well-distributed hash
// for the (seed, rule, hit) → decision mapping.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fire reports whether rule r (index ri) fires on its next hit at site,
// returning the 1-based hit index.
func (in *Injector) fire(ri int, site string) (int64, bool) {
	r := in.rules[ri]
	in.mu.Lock()
	in.hits[ri]++
	hit := in.hits[ri]
	in.mu.Unlock()
	switch {
	case r.Every > 0:
		if hit%int64(r.Every) != 0 {
			return hit, false
		}
	case r.Prob > 0:
		h := splitmix64(uint64(in.seed) ^ splitmix64(uint64(ri)+1) ^ splitmix64(uint64(hit)))
		if float64(h>>11)/float64(1<<53) >= r.Prob {
			return hit, false
		}
	default:
		return hit, false
	}
	in.mu.Lock()
	in.injected[site]++
	in.mu.Unlock()
	return hit, true
}

// Hook returns the dataflow fault hook (dataflow.WithFaultHook). Panic
// and Transient rules abort the attempt; Delay rules sleep; Corrupt
// rules are ignored here.
func (in *Injector) Hook() dataflow.FaultHook {
	return func(site string, partition int) {
		for ri, r := range in.rules {
			if r.Site != "" && !hasPrefix(site, r.Site) {
				continue
			}
			switch r.Kind {
			case Delay:
				if _, ok := in.fire(ri, site); ok {
					time.Sleep(r.Delay)
				}
			case Panic:
				if hit, ok := in.fire(ri, site); ok {
					panic(&Error{Site: site, Hit: hit})
				}
			case Transient:
				if hit, ok := in.fire(ri, site); ok {
					panic(dataflow.Transient(&Error{Site: site, Hit: hit}))
				}
			}
		}
	}
}

// ChunkHook returns the storage chunk hook
// (storage.ReadOptions.ChunkHook). Corrupt rules return a copy of the
// chunk with one deterministically chosen byte flipped; other kinds are
// ignored here.
func (in *Injector) ChunkHook() func(site string, chunk []byte) []byte {
	return func(site string, chunk []byte) []byte {
		for ri, r := range in.rules {
			if r.Kind != Corrupt {
				continue
			}
			if r.Site != "" && !hasPrefix(site, r.Site) {
				continue
			}
			hit, ok := in.fire(ri, site)
			if !ok || len(chunk) == 0 {
				continue
			}
			bad := append([]byte(nil), chunk...)
			pos := splitmix64(uint64(in.seed)^splitmix64(uint64(hit))) % uint64(len(bad))
			bad[pos] ^= 0xFF
			return bad
		}
		return chunk
	}
}

// ServeHook returns the serving-layer hook (serve.Config.FaultHook),
// called at the serve.* injection sites. Panic rules panic with the
// injected *Error — at serve.handler that exercises the serving layer's
// panic-recovery middleware; Transient rules return the *Error wrapped
// dataflow.Transient, which the reload path treats as the failure of
// the guarded operation (feeding the circuit breaker and retry budget);
// Delay rules sleep, simulating a slow dependency; Corrupt and Crash
// are ignored here.
func (in *Injector) ServeHook() func(site string) error {
	return func(site string) error {
		for ri, r := range in.rules {
			if r.Site != "" && !hasPrefix(site, r.Site) {
				continue
			}
			switch r.Kind {
			case Delay:
				if _, ok := in.fire(ri, site); ok {
					time.Sleep(r.Delay)
				}
			case Panic:
				if hit, ok := in.fire(ri, site); ok {
					panic(&Error{Site: site, Hit: hit})
				}
			case Transient:
				if hit, ok := in.fire(ri, site); ok {
					return dataflow.Transient(&Error{Site: site, Hit: hit})
				}
			}
		}
		return nil
	}
}

// WriteHook returns the storage write-path crash hook (the FaultHook
// field of storage WriteOptions / SaveOptions). Crash rules abort the
// write at the matched storage.write.* site with an *Error, which the
// write path treats as a process crash (staged temp files are left on
// disk, cleanup is skipped); other kinds are ignored here.
func (in *Injector) WriteHook() func(site string) error {
	return func(site string) error {
		for ri, r := range in.rules {
			if r.Kind != Crash {
				continue
			}
			if r.Site != "" && !hasPrefix(site, r.Site) {
				continue
			}
			if hit, ok := in.fire(ri, site); ok {
				return &Error{Site: site, Hit: hit}
			}
		}
		return nil
	}
}

// Injected returns a copy of the per-site injected-fault counts.
func (in *Injector) Injected() map[string]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.injected))
	for k, v := range in.injected {
		out[k] = v
	}
	return out
}

// InjectedTotal returns the total number of injected faults.
func (in *Injector) InjectedTotal() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, v := range in.injected {
		n += v
	}
	return n
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
