package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records a forest of named, nested spans. Tracing is off by
// default; a disabled tracer's StartSpan is one atomic load and returns
// a nil span whose End is a no-op, so instrumented code pays nothing in
// production paths.
//
// Spans nest by call order: StartSpan parents the new span under the
// most recently started span that has not ended. The tracer therefore
// assumes spans are opened and closed by a single logical thread of
// control — the zoom operators' stage structure is sequential, with
// parallelism confined inside dataflow operations, which report to the
// metrics registry instead. Concurrent use is memory-safe (a mutex
// guards the tree) but may interleave parentage arbitrarily.
type Tracer struct {
	enabled atomic.Bool
	reg     *Registry // span-duration histograms; may be nil

	mu    sync.Mutex
	roots []*Span
	stack []*Span
}

// NewTracer returns a disabled tracer. If reg is non-nil, every ended
// span also records its duration to the histogram "span.<name>".
func NewTracer(reg *Registry) *Tracer {
	return &Tracer{reg: reg}
}

// SetEnabled turns tracing on or off. Disabling does not clear
// previously recorded spans.
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether tracing is on.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Span is one timed, named region. A nil *Span is valid and inert, so
// callers never need to check whether tracing is enabled.
type Span struct {
	tracer   *Tracer
	name     string
	start    time.Time
	dur      time.Duration
	children []*Span
}

// StartSpan opens a span named name as a child of the innermost open
// span (or as a root). Returns nil when the tracer is disabled.
func (t *Tracer) StartSpan(name string) *Span {
	if !t.enabled.Load() {
		return nil
	}
	s := &Span{tracer: t, name: name, start: time.Now()}
	t.mu.Lock()
	if n := len(t.stack); n > 0 {
		parent := t.stack[n-1]
		parent.children = append(parent.children, s)
	} else {
		t.roots = append(t.roots, s)
	}
	t.stack = append(t.stack, s)
	t.mu.Unlock()
	return s
}

// End closes the span, fixing its duration and popping it (and any
// still-open descendants) off the tracer's open-span stack. Safe on a
// nil span and idempotent.
func (s *Span) End() {
	if s == nil || s.dur != 0 {
		return
	}
	s.dur = time.Since(s.start)
	if s.dur == 0 {
		s.dur = 1 // preserve idempotence on sub-resolution spans
	}
	t := s.tracer
	t.mu.Lock()
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			t.stack = t.stack[:i]
			break
		}
	}
	t.mu.Unlock()
	if t.reg != nil {
		t.reg.Histogram("span." + s.name).Observe(s.dur)
	}
}

// Reset discards all recorded spans, including open ones.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.roots, t.stack = nil, nil
	t.mu.Unlock()
}

// SpanSnapshot is the JSON form of one span and its subtree.
type SpanSnapshot struct {
	Name     string         `json:"name"`
	DurMS    float64        `json:"dur_ms"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot copies the recorded span forest. Spans still open report
// the time elapsed so far.
func (t *Tracer) Snapshot() []SpanSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return snapshotSpans(t.roots)
}

func snapshotSpans(spans []*Span) []SpanSnapshot {
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanSnapshot, len(spans))
	for i, s := range spans {
		d := s.dur
		if d == 0 {
			d = time.Since(s.start)
		}
		out[i] = SpanSnapshot{Name: s.name, DurMS: durMS(d), Children: snapshotSpans(s.children)}
	}
	return out
}

// AggregatedSpan is a span forest merged by name path: all spans that
// share a name under the same parent path collapse into one node with
// their total duration and count. This is the stable, compact form
// exported to BENCH_*.json — per-stage totals survive while the
// per-invocation forest (hundreds of repetitions of the same pipeline)
// does not bloat the trajectory.
type AggregatedSpan struct {
	Name     string           `json:"name"`
	Count    int64            `json:"count"`
	TotalMS  float64          `json:"total_ms"`
	Children []AggregatedSpan `json:"children,omitempty"`
}

// Aggregate merges a span forest by name path. Sibling order is
// name-sorted for stable output.
func Aggregate(spans []SpanSnapshot) []AggregatedSpan {
	if len(spans) == 0 {
		return nil
	}
	byName := make(map[string]*AggregatedSpan)
	childrenByName := make(map[string][]SpanSnapshot)
	names := make([]string, 0, len(spans))
	for _, s := range spans {
		a, ok := byName[s.Name]
		if !ok {
			a = &AggregatedSpan{Name: s.Name}
			byName[s.Name] = a
			names = append(names, s.Name)
		}
		a.Count++
		a.TotalMS += s.DurMS
		childrenByName[s.Name] = append(childrenByName[s.Name], s.Children...)
	}
	sort.Strings(names)
	out := make([]AggregatedSpan, 0, len(names))
	for _, n := range names {
		a := byName[n]
		a.Children = Aggregate(childrenByName[n])
		out = append(out, *a)
	}
	return out
}

// FormatSpans renders a span forest as an indented tree, one span per
// line, for terminal display (tgraph-cli -trace).
func FormatSpans(spans []SpanSnapshot) string {
	var b strings.Builder
	var walk func(spans []SpanSnapshot, depth int)
	walk = func(spans []SpanSnapshot, depth int) {
		for _, s := range spans {
			fmt.Fprintf(&b, "%s%s %.2fms\n", strings.Repeat("  ", depth), s.Name, s.DurMS)
			walk(s.Children, depth+1)
		}
	}
	walk(spans, 0)
	return b.String()
}

// Package-level default registry and tracer: the instances the stack
// (dataflow, storage, core) reports to. Commands and the bench harness
// reset, enable and snapshot these.
var (
	defaultRegistry = NewRegistry()
	defaultTracer   = NewTracer(defaultRegistry)
)

// Default returns the process-wide default registry.
func Default() *Registry { return defaultRegistry }

// DefaultTracer returns the process-wide default tracer.
func DefaultTracer() *Tracer { return defaultTracer }

// StartSpan opens a span on the default tracer.
func StartSpan(name string) *Span { return defaultTracer.StartSpan(name) }

// SetTracing enables or disables the default tracer.
func SetTracing(on bool) { defaultTracer.SetEnabled(on) }

// TracingEnabled reports whether the default tracer is on.
func TracingEnabled() bool { return defaultTracer.Enabled() }

// Snapshot copies the default registry's metrics.
func Snapshot() MetricsSnapshot { return defaultRegistry.Snapshot() }

// Spans copies the default tracer's span forest.
func Spans() []SpanSnapshot { return defaultTracer.Snapshot() }

// ResetAll zeroes the default registry and clears the default tracer.
func ResetAll() {
	defaultRegistry.Reset()
	defaultTracer.Reset()
}
