// Package obs is the observability layer of the reproduction: a
// dependency-free metrics registry (counters, gauges, duration
// histograms with p50/p95/p99) and hierarchical span tracing, with JSON
// snapshot export. It exists because the paper's entire evaluation
// (Section 5, Figs 10–17) rests on measured runtimes and shuffle work:
// internal/dataflow reports engine work here, internal/storage reports
// scan and decode costs, internal/core opens one span per zoom stage,
// and internal/bench exports everything as the BENCH_*.json trajectory.
//
// The package is imported by the lowest layers of the stack, so it
// imports nothing but the standard library, and the disabled paths are
// designed to be nearly free: counters and gauges are single atomic
// operations, and StartSpan on a disabled tracer is one atomic load
// returning a nil (no-op) span.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an instantaneous value that can move in both directions
// (e.g. worker-pool occupancy). The zero value is ready to use; all
// methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta and returns the new value.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Max raises the gauge to n if n exceeds the current value (a
// high-water mark).
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) reset() { g.v.Store(0) }

// histogramWindow bounds the number of raw samples a histogram retains
// for quantile estimation. Count, sum, min and max always cover every
// observation; beyond the window the oldest samples are overwritten, so
// quantiles describe the most recent observations.
const histogramWindow = 4096

// Histogram records durations and reports count, sum, min, max and
// p50/p95/p99 quantiles. The zero value is ready to use; all methods
// are safe for concurrent use.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      time.Duration
	min, max time.Duration
	samples  []time.Duration
	next     int
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if h.count == 0 || d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	if len(h.samples) < histogramWindow {
		h.samples = append(h.samples, d)
	} else {
		h.samples[h.next] = d
		h.next = (h.next + 1) % histogramWindow
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

func (h *Histogram) reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count, h.sum, h.min, h.max, h.next = 0, 0, 0, 0, 0
	h.samples = h.samples[:0]
}

// HistogramSnapshot is the JSON form of a histogram. Durations are
// reported in milliseconds, matching the tables of Section 5.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	SumMS  float64 `json:"sum_ms"`
	MeanMS float64 `json:"mean_ms"`
	MinMS  float64 `json:"min_ms"`
	MaxMS  float64 `json:"max_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Count: h.count,
		SumMS: durMS(h.sum),
		MinMS: durMS(h.min),
		MaxMS: durMS(h.max),
	}
	if h.count > 0 {
		s.MeanMS = durMS(h.sum / time.Duration(h.count))
	}
	if len(h.samples) > 0 {
		sorted := make([]time.Duration, len(h.samples))
		copy(sorted, h.samples)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		s.P50MS = durMS(quantile(sorted, 0.50))
		s.P95MS = durMS(quantile(sorted, 0.95))
		s.P99MS = durMS(quantile(sorted, 0.99))
	}
	return s
}

// quantile returns the q-quantile of sorted using the nearest-rank
// method (the value at rank ceil(q*n)).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Registry holds named metrics. Instruments are created on first use
// and retained forever: callers may cache the returned pointers, and
// Reset zeroes instruments in place so cached handles stay live. All
// methods are safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram with the given name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h = &Histogram{}
	r.histograms[name] = h
	return h
}

// Reset zeroes every instrument in place. Cached instrument pointers
// remain valid and keep reporting to the registry.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.histograms {
		h.reset()
	}
}

// MetricsSnapshot is a point-in-time JSON-marshalable copy of a
// registry. Instruments that were never touched (zero count) are
// omitted so that snapshots only describe work that actually happened.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() MetricsSnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := MetricsSnapshot{}
	for name, c := range r.counters {
		if v := c.Value(); v != 0 {
			if s.Counters == nil {
				s.Counters = make(map[string]int64)
			}
			s.Counters[name] = v
		}
	}
	for name, g := range r.gauges {
		if v := g.Value(); v != 0 {
			if s.Gauges == nil {
				s.Gauges = make(map[string]int64)
			}
			s.Gauges[name] = v
		}
	}
	for name, h := range r.histograms {
		if hs := h.snapshot(); hs.Count != 0 {
			if s.Histograms == nil {
				s.Histograms = make(map[string]HistogramSnapshot)
			}
			s.Histograms[name] = hs
		}
	}
	return s
}
