package obs

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(3)
	c.Add(4)
	if c.Value() != 7 {
		t.Errorf("counter = %d, want 7", c.Value())
	}
	if r.Counter("c") != c {
		t.Error("Counter must return the same instance for the same name")
	}
	g := r.Gauge("g")
	g.Set(5)
	if got := g.Add(-2); got != 3 {
		t.Errorf("gauge Add returned %d, want 3", got)
	}
	g.Max(10)
	g.Max(4)
	if g.Value() != 10 {
		t.Errorf("gauge after Max = %d, want 10", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.MinMS != 1 || s.MaxMS != 100 {
		t.Errorf("min/max = %v/%v, want 1/100", s.MinMS, s.MaxMS)
	}
	if s.P50MS != 50 {
		t.Errorf("p50 = %v, want 50", s.P50MS)
	}
	if s.P95MS != 95 {
		t.Errorf("p95 = %v, want 95", s.P95MS)
	}
	if s.P99MS != 99 {
		t.Errorf("p99 = %v, want 99", s.P99MS)
	}
	if s.MeanMS != 50.5 {
		t.Errorf("mean = %v, want 50.5", s.MeanMS)
	}
	if s.SumMS != 5050 {
		t.Errorf("sum = %v, want 5050", s.SumMS)
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(7 * time.Millisecond)
	s := h.snapshot()
	if s.P50MS != 7 || s.P99MS != 7 || s.MinMS != 7 || s.MaxMS != 7 {
		t.Errorf("single-sample snapshot = %+v, want all 7", s)
	}
}

func TestHistogramWindowOverflow(t *testing.T) {
	var h Histogram
	// Overflow the retention window: count/sum must still cover all
	// observations, quantiles only the most recent window.
	for i := 0; i < histogramWindow+500; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.snapshot()
	if s.Count != int64(histogramWindow+500) {
		t.Errorf("count = %d, want %d", s.Count, histogramWindow+500)
	}
	if s.P50MS != 1 {
		t.Errorf("p50 = %v, want 1", s.P50MS)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("tasks").Add(1)
				r.Gauge("busy").Add(1)
				r.Gauge("busy").Add(-1)
				r.Gauge("high").Max(int64(i))
				r.Histogram("lat").Observe(time.Duration(i))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	// Concurrent resets must also be safe.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			r.Reset()
		}
	}()
	wg.Wait()
	r.Reset()
	if got := r.Counter("tasks").Value(); got != 0 {
		t.Errorf("counter after reset = %d, want 0", got)
	}
	r.Counter("tasks").Add(2)
	if got := r.Counter("tasks").Value(); got != 2 {
		t.Errorf("cached handle detached after reset: %d, want 2", got)
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTracer(nil)
	if s := tr.StartSpan("ignored"); s != nil {
		t.Fatal("disabled tracer must return nil spans")
	}
	var nilSpan *Span
	nilSpan.End() // must not panic

	tr.SetEnabled(true)
	root := tr.StartSpan("root")
	a := tr.StartSpan("a")
	aa := tr.StartSpan("aa")
	aa.End()
	a.End()
	b := tr.StartSpan("b")
	b.End()
	root.End()
	second := tr.StartSpan("second-root")
	second.End()

	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("roots = %d, want 2", len(snap))
	}
	if snap[0].Name != "root" || snap[1].Name != "second-root" {
		t.Fatalf("root names = %q, %q", snap[0].Name, snap[1].Name)
	}
	r := snap[0]
	if len(r.Children) != 2 || r.Children[0].Name != "a" || r.Children[1].Name != "b" {
		t.Fatalf("root children = %+v", r.Children)
	}
	if len(r.Children[0].Children) != 1 || r.Children[0].Children[0].Name != "aa" {
		t.Fatalf("nested child = %+v", r.Children[0].Children)
	}
	if r.DurMS <= 0 {
		t.Error("root span has no duration")
	}

	tr.Reset()
	if len(tr.Snapshot()) != 0 {
		t.Error("Reset did not clear spans")
	}
}

func TestSpanEndWithOpenChildren(t *testing.T) {
	tr := NewTracer(nil)
	tr.SetEnabled(true)
	root := tr.StartSpan("root")
	tr.StartSpan("leaked") // never ended
	root.End()
	// A new root must not become a child of the leaked span.
	next := tr.StartSpan("next")
	next.End()
	snap := tr.Snapshot()
	if len(snap) != 2 || snap[1].Name != "next" {
		t.Fatalf("snapshot = %+v, want [root next] as roots", snap)
	}
}

func TestSpanHistogramRecording(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r)
	tr.SetEnabled(true)
	sp := tr.StartSpan("stage")
	sp.End()
	sp.End() // idempotent: must not double-record
	if n := r.Histogram("span.stage").Count(); n != 1 {
		t.Errorf("span histogram count = %d, want 1", n)
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	in := []SpanSnapshot{{
		Name:  "wzoom.VE",
		DurMS: 12.5,
		Children: []SpanSnapshot{
			{Name: "windows", DurMS: 1.25},
			{Name: "vertices", DurMS: 8, Children: []SpanSnapshot{{Name: "align", DurMS: 3}}},
		},
	}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out []SpanSnapshot
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("dataflow.tasks").Add(42)
	r.Gauge("dataflow.workers_busy_max").Max(8)
	r.Histogram("storage.decode").Observe(3 * time.Millisecond)
	in := r.Snapshot()
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out MetricsSnapshot
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
	// Untouched instruments are omitted.
	r2 := NewRegistry()
	r2.Counter("never")
	if s := r2.Snapshot(); s.Counters != nil {
		t.Errorf("zero counter must be omitted, got %+v", s.Counters)
	}
}

func TestAggregate(t *testing.T) {
	spans := []SpanSnapshot{
		{Name: "run", DurMS: 10, Children: []SpanSnapshot{{Name: "a", DurMS: 4}, {Name: "b", DurMS: 5}}},
		{Name: "run", DurMS: 20, Children: []SpanSnapshot{{Name: "b", DurMS: 12}}},
	}
	agg := Aggregate(spans)
	if len(agg) != 1 {
		t.Fatalf("aggregated roots = %d, want 1", len(agg))
	}
	run := agg[0]
	if run.Count != 2 || run.TotalMS != 30 {
		t.Errorf("run = %+v, want count 2 total 30", run)
	}
	if len(run.Children) != 2 {
		t.Fatalf("children = %+v", run.Children)
	}
	if run.Children[0].Name != "a" || run.Children[0].Count != 1 || run.Children[0].TotalMS != 4 {
		t.Errorf("child a = %+v", run.Children[0])
	}
	if run.Children[1].Name != "b" || run.Children[1].Count != 2 || run.Children[1].TotalMS != 17 {
		t.Errorf("child b = %+v", run.Children[1])
	}
}

func TestFormatSpans(t *testing.T) {
	out := FormatSpans([]SpanSnapshot{{Name: "root", DurMS: 1, Children: []SpanSnapshot{{Name: "leaf", DurMS: 0.5}}}})
	want := "root 1.00ms\n  leaf 0.50ms\n"
	if out != want {
		t.Errorf("FormatSpans = %q, want %q", out, want)
	}
}

func TestDefaultHelpers(t *testing.T) {
	ResetAll()
	SetTracing(true)
	defer SetTracing(false)
	sp := StartSpan("x")
	Default().Counter("k").Add(1)
	sp.End()
	if !TracingEnabled() {
		t.Error("TracingEnabled = false after SetTracing(true)")
	}
	if len(Spans()) != 1 {
		t.Errorf("default tracer spans = %d, want 1", len(Spans()))
	}
	if Snapshot().Counters["k"] != 1 {
		t.Error("default registry lost counter")
	}
	ResetAll()
	if len(Spans()) != 0 || Snapshot().Counters != nil {
		t.Error("ResetAll left state behind")
	}
}
