// Collab: structural zoom on a collaboration network.
//
// Generates an SNB-like social network (the workload the paper's
// evaluation uses for growth-only graphs), then applies aZoom^T to lift
// the person-level friendship graph to a firstName-group-level graph —
// the paper's SNB grouping attribute — computing per-group member
// counts and average friend counts. This is the "study communities
// rather than individual nodes" use case from the introduction.
//
// Run with: go run ./examples/collab
package main

import (
	"fmt"
	"log"
	"sort"

	tgraph "repro"
	"repro/internal/datagen"
)

func main() {
	ctx := tgraph.NewContext()

	d := datagen.SNB(datagen.SNBConfig{
		Persons:              800,
		Snapshots:            36,
		FriendshipsPerPerson: 10,
		FirstNames:           12, // small pool so groups are visible
		Seed:                 7,
	})
	g := tgraph.FromStates(ctx, d.Vertices, d.Edges)
	st := datagen.Describe(d)
	fmt.Printf("input: %d persons, %d friendships, %d snapshots, evolution rate %.1f%%\n",
		st.Vertices, st.Edges, st.Snapshots, st.EvRate)

	groups, err := tgraph.NewPipeline(g).
		AZoom(tgraph.GroupByProperty("firstName", "name-group", tgraph.Count("members"))).
		Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("zoomed: %d name-groups, %d group-level edges\n\n", groups.NumVertices(), groups.NumEdges())

	// Final membership per group (the last state of each group vertex).
	type groupInfo struct {
		name    string
		members int64
		last    tgraph.Interval
	}
	byID := map[tgraph.VertexID]groupInfo{}
	for _, v := range groups.VertexStates() {
		gi := byID[v.ID]
		if gi.last.IsEmpty() || gi.last.Before(v.Interval) {
			gi = groupInfo{name: v.Props.GetString("name"), members: v.Props.GetInt("members"), last: v.Interval}
		}
		byID[v.ID] = gi
	}
	infos := make([]groupInfo, 0, len(byID))
	for _, gi := range byID {
		infos = append(infos, gi)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].members > infos[j].members })
	fmt.Println("groups by final membership:")
	for _, gi := range infos {
		fmt.Printf("  %-10s %4d members (last state %v)\n", gi.name, gi.members, gi.last)
	}

	// How did the largest group grow? Its count per coalesced state.
	if len(infos) > 0 {
		target := infos[0].name
		fmt.Printf("\ngrowth of %q over time:\n", target)
		var states []tgraph.VertexTuple
		for _, v := range groups.VertexStates() {
			if v.Props.GetString("name") == target {
				states = append(states, v)
			}
		}
		sort.Slice(states, func(i, j int) bool { return states[i].Interval.Before(states[j].Interval) })
		for _, s := range states {
			fmt.Printf("  %v  members=%d\n", s.Interval, s.Props.GetInt("members"))
		}
	}
}
