// Quarterly: temporal zoom with different existence quantifiers.
//
// Generates a WikiTalk-like messaging network at monthly resolution and
// rolls it up to quarters with wZoom^T under three quantifier regimes:
//
//	nodes=all,    edges=all    — strong, persistent connections only
//	nodes=exists, edges=most   — members who appeared at all, edges
//	                             active most of the quarter
//	nodes=exists, edges=exists — everything that was ever active
//
// This is the paper's "observe strong connections over a volatile
// evolving graph" use case (Section 2.3).
//
// Run with: go run ./examples/quarterly
package main

import (
	"fmt"
	"log"

	tgraph "repro"
	"repro/internal/datagen"
)

func main() {
	ctx := tgraph.NewContext()

	d := datagen.WikiTalk(datagen.WikiTalkConfig{
		Users:             1000,
		Snapshots:         24,
		EventsPerSnapshot: 800,
		Seed:              11,
	})
	g := tgraph.FromStates(ctx, d.Vertices, d.Edges).Coalesce()
	fmt.Printf("input: %d users, %d message edges over %d months\n",
		g.NumVertices(), g.NumEdges(), g.Lifetime().Duration())

	most, _ := tgraph.ParseQuantifier("most")
	regimes := []struct {
		name   string
		v, e   tgraph.Quantifier
		window tgraph.Time
	}{
		{"all/all", tgraph.All(), tgraph.All(), 3},
		{"exists/most", tgraph.Exists(), most, 3},
		{"exists/exists", tgraph.Exists(), tgraph.Exists(), 3},
	}
	for _, r := range regimes {
		out, err := tgraph.NewPipeline(g).
			WZoom(tgraph.WZoomSpec{
				Window:   tgraph.EveryN(r.window),
				VQuant:   r.v,
				EQuant:   r.e,
				VResolve: tgraph.LastWins,
				EResolve: tgraph.LastWins,
			}).
			Result()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nquarterly rollup, nodes=%v edges=%v:\n", r.v, r.e)
		fmt.Printf("  %d vertices, %d edges survive\n", out.NumVertices(), out.NumEdges())
		fmt.Printf("  vertex states: %d, edge states: %d (coalesced)\n",
			len(out.VertexStates()), len(out.EdgeStates()))
	}

	// Strong connections appear only under restrictive quantification:
	// under all/all an edge must span an entire quarter, which a
	// one-month message never does — only recurring pairs survive.
	fmt.Println("\ninterpretation: all/all keeps only pairs that messaged in every")
	fmt.Println("month of a quarter; exists/exists keeps any pair that messaged at all.")
}
