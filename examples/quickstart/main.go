// Quickstart: the paper's running example (Figures 1-3).
//
// Builds the TGraph G1 of Figure 1 — Ann, Bob and Cat co-authoring over
// months 1..9 of 2019 — then:
//
//  1. aZoom^T to school-level resolution (Figure 2): schools become
//     nodes, the number of enrolled students is counted per school, and
//     co-author edges are re-pointed between schools;
//  2. wZoom^T to fiscal quarters (Figure 3): 3-month windows with
//     universal (all/all) quantification and last-wins attribute
//     resolution.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	tgraph "repro"
)

func main() {
	ctx := tgraph.NewContext()

	// Figure 1: TGraph G1.
	vertices := []tgraph.VertexTuple{
		{ID: 1, Interval: tgraph.MustInterval(1, 7), Props: tgraph.NewProps("type", "person", "name", "Ann", "school", "MIT")},
		{ID: 2, Interval: tgraph.MustInterval(2, 5), Props: tgraph.NewProps("type", "person", "name", "Bob")},
		{ID: 2, Interval: tgraph.MustInterval(5, 9), Props: tgraph.NewProps("type", "person", "name", "Bob", "school", "CMU")},
		{ID: 3, Interval: tgraph.MustInterval(1, 9), Props: tgraph.NewProps("type", "person", "name", "Cat", "school", "MIT")},
	}
	edges := []tgraph.EdgeTuple{
		{ID: 1, Src: 1, Dst: 2, Interval: tgraph.MustInterval(2, 7), Props: tgraph.NewProps("type", "co-author")},
		{ID: 2, Src: 2, Dst: 3, Interval: tgraph.MustInterval(7, 9), Props: tgraph.NewProps("type", "co-author")},
	}
	g := tgraph.FromStates(ctx, vertices, edges)
	if err := tgraph.Validate(g); err != nil {
		log.Fatalf("invalid TGraph: %v", err)
	}
	fmt.Println("G1 (Figure 1):")
	dump(g)

	// Figure 2: attribute-based zoom to schools.
	schools, err := tgraph.NewPipeline(g).
		AZoom(tgraph.GroupByProperty("school", "school", tgraph.Count("students"))).
		Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\naZoom^T by school (Figure 2):")
	dump(schools)

	// Figure 3: window-based zoom to quarters over the original graph.
	quarters, err := tgraph.NewPipeline(g).
		WZoom(tgraph.WZoomSpec{
			Window:   tgraph.EveryN(3),
			VQuant:   tgraph.All(),
			EQuant:   tgraph.All(),
			VResolve: tgraph.LastWins,
			EResolve: tgraph.LastWins,
		}).
		Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwZoom^T to quarters, nodes=all, edges=all (Figure 3):")
	dump(quarters)
}

func dump(g tgraph.Graph) {
	vs := g.VertexStates()
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].ID != vs[j].ID {
			return vs[i].ID < vs[j].ID
		}
		return vs[i].Interval.Before(vs[j].Interval)
	})
	for _, v := range vs {
		fmt.Printf("  vertex %-20v T=%v  {%v}\n", v.ID, v.Interval, v.Props)
	}
	es := g.EdgeStates()
	sort.Slice(es, func(i, j int) bool { return es[i].Interval.Before(es[j].Interval) })
	for _, e := range es {
		fmt.Printf("  edge   %v -> %v  T=%v  {%v}\n", e.Src, e.Dst, e.Interval, e.Props)
	}
}
