// Pipeline: chained zooms, representation switching, persistence and
// snapshot analytics.
//
// Reproduces the paper's Section 5.3 workflow end to end:
//
//  1. generate an NGrams-like co-occurrence graph and persist it as a
//     PGC graph directory (columnar, zone-mapped);
//  2. load a temporal slice of it in the OG representation with
//     predicate pushdown;
//  3. run aZoom^T on OG, switch to VE, run wZoom^T there (the paper's
//     OG-VE strategy), with lazy coalescing throughout;
//  4. run Pregel-style analytics (degrees, connected components) over
//     the zoomed result — the paper's future-work extension.
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"os"

	tgraph "repro"
	"repro/internal/algo"
	"repro/internal/datagen"
	"repro/internal/graphx"
)

func main() {
	ctx := tgraph.NewContext()

	// 1. Generate and persist.
	d := datagen.NGrams(datagen.NGramsConfig{
		Words:            600,
		Snapshots:        32,
		PairsPerSnapshot: 500,
		Persistence:      0.18,
		Seed:             3,
	})
	dir, err := os.MkdirTemp("", "tgraph-pipeline-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	full := tgraph.FromStates(ctx, d.Vertices, d.Edges)
	if err := tgraph.Save(dir, full, tgraph.SaveOptions{ChunkRows: 512}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted %d word vertices, %d co-occurrence edges to %s\n",
		full.NumVertices(), full.NumEdges(), dir)

	// 2. Load the last half of the history as OG, with pushdown.
	rng := tgraph.MustInterval(16, 32)
	g, stats, err := tgraph.Load(ctx, dir, tgraph.LoadOptions{Rep: tgraph.OG, Range: rng})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded slice %v as %s: %d vertices, %d edges (chunks read %d, skipped %d)\n",
		rng, g.Rep(), g.NumVertices(), g.NumEdges(), stats.ChunksRead, stats.ChunksSkipped)

	// 3. Chain: aZoom on OG -> switch to VE -> wZoom, lazily coalesced.
	p := tgraph.NewPipeline(g).
		AZoom(tgraph.GroupByProperty("word", "word-group", tgraph.Count("n"))).
		Switch(tgraph.VE).
		WZoom(tgraph.WZoomSpec{
			Window:   tgraph.EveryN(4),
			VQuant:   tgraph.Exists(),
			EQuant:   tgraph.Exists(),
			VResolve: tgraph.LastWins,
			EResolve: tgraph.LastWins,
		})
	result, err := p.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline %v: %d group vertices, %d edges\n",
		p.Steps(), result.NumVertices(), result.NumEdges())

	// 4. Analytics over the zoomed graph.
	cc := algo.ConnectedComponentsSeries(result)
	fmt.Println("\nconnected components per zoomed window:")
	for _, pt := range cc {
		fmt.Printf("  %v  components=%d largest=%d\n", pt.Interval, pt.Value.Count, pt.Value.Largest)
	}
	deg := algo.DegreeSeries(result, graphx.TotalDegrees)
	if len(deg) > 0 {
		last := deg[len(deg)-1]
		top := algo.TopVertices(last.Value, 3)
		fmt.Printf("\ntop-degree word groups in %v:\n", last.Interval)
		for _, id := range top {
			fmt.Printf("  vertex %d: degree %d\n", id, last.Value[id])
		}
	}
}
