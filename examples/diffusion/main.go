// Diffusion: time-respecting reachability before and after zooming.
//
// Information can only flow along time-respecting paths — each edge
// must be traversed while it exists, never moving backwards in time.
// This example generates a WikiTalk-like messaging network, asks how
// far a message starting at the best-connected user could spread, and
// then shows how the answer changes after zooming out temporally with
// wZoom^T: coarser windows lengthen edge validity, so coarse-grained
// analysis over-estimates diffusion — a concrete reason the paper gives
// for making temporal resolution a first-class, queryable knob.
//
// The graph round-trips through the CSV interchange format on the way,
// demonstrating the import path for real datasets.
//
// Run with: go run ./examples/diffusion
package main

import (
	"fmt"
	"log"
	"os"

	tgraph "repro"
	"repro/internal/datagen"
)

func main() {
	ctx := tgraph.NewContext()

	d := datagen.WikiTalk(datagen.WikiTalkConfig{
		Users:             400,
		Snapshots:         24,
		EventsPerSnapshot: 500,
		Seed:              21,
	})
	g := tgraph.FromStates(ctx, d.Vertices, d.Edges).Coalesce()

	// Round-trip through CSV, as a real dataset would arrive.
	dir, err := os.MkdirTemp("", "tgraph-diffusion-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := tgraph.ExportCSV(dir, g); err != nil {
		log.Fatal(err)
	}
	g, err = tgraph.ImportCSV(ctx, dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported %d users, %d message edges from CSV\n", g.NumVertices(), g.NumEdges())

	// Source: the user with the highest total degree in the first year.
	deg := tgraph.DegreeSeries(g, tgraph.TotalDegrees)
	best, bestDeg := tgraph.VertexID(0), -1
	for _, pt := range deg {
		for id, n := range pt.Value {
			if n > bestDeg {
				best, bestDeg = id, n
			}
		}
	}
	fmt.Printf("source: user %d (peak degree %d)\n\n", best, bestDeg)

	report := func(label string, h tgraph.Graph) {
		arr := tgraph.EarliestArrival(h, best, 0)
		latest := tgraph.Time(0)
		for _, t := range arr {
			if t > latest {
				latest = t
			}
		}
		fmt.Printf("%-28s reachable users: %4d   latest arrival: t=%d\n", label, len(arr), latest)
	}

	report("monthly resolution:", g)

	for _, w := range []tgraph.Time{3, 6, 12} {
		zoomed, err := tgraph.NewPipeline(g).
			WZoom(tgraph.WZoomSpec{
				Window: tgraph.EveryN(w),
				VQuant: tgraph.Exists(), EQuant: tgraph.Exists(),
			}).
			Result()
		if err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("%d-month windows (exists):", w), zoomed)
	}

	fmt.Println("\ninterpretation: zooming out stretches one-month messages across")
	fmt.Println("whole windows, creating time-respecting paths that never existed at")
	fmt.Println("the original resolution — temporal resolution changes the answer.")
}
