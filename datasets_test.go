package tgraph_test

import (
	"testing"

	tgraph "repro"
)

func TestFacadeGenerators(t *testing.T) {
	ctx := tgraph.NewContext()
	wiki := tgraph.GenerateWikiTalk(tgraph.WikiTalkConfig{Users: 100, Snapshots: 12, EventsPerSnapshot: 50, Seed: 1})
	snb := tgraph.GenerateSNB(tgraph.SNBConfig{Persons: 100, Snapshots: 12, FriendshipsPerPerson: 5, Seed: 1})
	ngrams := tgraph.GenerateNGrams(tgraph.NGramsConfig{Words: 100, Snapshots: 12, PairsPerSnapshot: 40, Seed: 1})
	for _, d := range []tgraph.Dataset{wiki, snb, ngrams} {
		g := tgraph.GraphOf(ctx, d)
		if err := tgraph.Validate(g); err != nil {
			t.Errorf("%s: invalid: %v", d.Name, err)
		}
		st := tgraph.DescribeDataset(d)
		if st.Vertices != 100 || st.Snapshots == 0 {
			t.Errorf("%s stats: %+v", d.Name, st)
		}
	}
	// The evolution-rate ordering the paper's Table 1 reports.
	if tgraph.DescribeDataset(snb).EvRate <= tgraph.DescribeDataset(wiki).EvRate {
		t.Error("SNB must have the higher evolution rate")
	}
}
