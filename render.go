package tgraph

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Rendering helpers: Graphviz DOT for snapshots and a textual timeline
// for whole evolving graphs — exploratory-analysis conveniences around
// the zoom workflow (zoom out, then look).

// WriteDOT renders the graph's state at time t as a Graphviz digraph.
// Vertex labels show the id and properties; edge labels show the type.
func WriteDOT(w io.Writer, g Graph, t Time) error {
	snap, ok := SnapshotAt(g, t)
	if !ok {
		return fmt.Errorf("tgraph: no snapshot at time %d", t)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph tgraph_at_%d {\n", t)
	fmt.Fprintf(&b, "  label=\"t=%d, interval %v\";\n", t, snap.Interval)

	var vs []struct {
		id    VertexID
		attrs Props
	}
	for _, part := range snap.Graph.Vertices().Partitions() {
		for _, v := range part {
			vs = append(vs, struct {
				id    VertexID
				attrs Props
			}{v.ID, v.Attr})
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].id < vs[j].id })
	for _, v := range vs {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", v.id, fmt.Sprintf("%d\n%v", v.id, v.attrs))
	}

	type edge struct {
		id       EdgeID
		src, dst VertexID
		typ      string
	}
	var es []edge
	for _, part := range snap.Graph.Edges().Partitions() {
		for _, e := range part {
			es = append(es, edge{e.ID, e.Src, e.Dst, e.Attr.Type()})
		}
	}
	sort.Slice(es, func(i, j int) bool { return es[i].id < es[j].id })
	for _, e := range es {
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", e.src, e.dst, e.typ)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteTimeline renders every entity's coalesced states as one line per
// state, sorted by entity then time — the textual analogue of the
// paper's Figure 1 drawing.
func WriteTimeline(w io.Writer, g Graph) error {
	c := g.Coalesce()
	var b strings.Builder
	vs := c.VertexStates()
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].ID != vs[j].ID {
			return vs[i].ID < vs[j].ID
		}
		return vs[i].Interval.Before(vs[j].Interval)
	})
	b.WriteString("vertices:\n")
	for _, v := range vs {
		fmt.Fprintf(&b, "  %-12d T=%-10v {%v}\n", v.ID, v.Interval, v.Props)
	}
	es := c.EdgeStates()
	sort.Slice(es, func(i, j int) bool {
		if es[i].ID != es[j].ID {
			return es[i].ID < es[j].ID
		}
		return es[i].Interval.Before(es[j].Interval)
	})
	b.WriteString("edges:\n")
	for _, e := range es {
		fmt.Fprintf(&b, "  %-6d %d -> %-8d T=%-10v {%v}\n", e.ID, e.Src, e.Dst, e.Interval, e.Props)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
