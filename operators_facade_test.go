package tgraph_test

import (
	"testing"

	tgraph "repro"
)

func TestFacadeTrimSubgraphMap(t *testing.T) {
	ctx := tgraph.NewContext()
	g := exampleGraph(ctx)

	trimmed, err := tgraph.Trim(g, tgraph.MustInterval(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !tgraph.MustInterval(1, 5).Covers(trimmed.Lifetime()) {
		t.Errorf("trim lifetime %v", trimmed.Lifetime())
	}

	mitOnly, err := tgraph.Subgraph(g, func(v tgraph.VertexTuple) bool {
		return v.Props.GetString("school") == "MIT"
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mitOnly.NumVertices() != 2 {
		t.Errorf("MIT subgraph vertices = %d", mitOnly.NumVertices())
	}

	renamed, err := tgraph.MapProps(g, nil, func(e tgraph.EdgeTuple) tgraph.Props {
		return tgraph.NewProps("type", "collaborate")
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range renamed.EdgeStates() {
		if e.Props.Type() != "collaborate" {
			t.Fatal("MapProps not applied")
		}
	}
}

func TestFacadeSetOperators(t *testing.T) {
	ctx := tgraph.NewContext()
	a := tgraph.FromStates(ctx, []tgraph.VertexTuple{
		{ID: 1, Interval: tgraph.MustInterval(0, 6), Props: tgraph.NewProps("type", "p")},
	}, nil)
	b := tgraph.FromStates(ctx, []tgraph.VertexTuple{
		{ID: 1, Interval: tgraph.MustInterval(4, 9), Props: tgraph.NewProps("type", "p")},
	}, nil)

	u, err := tgraph.Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Coalesce().Lifetime() != tgraph.MustInterval(0, 9) {
		t.Errorf("union lifetime %v", u.Lifetime())
	}
	i, err := tgraph.Intersection(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if i.Lifetime() != tgraph.MustInterval(4, 6) {
		t.Errorf("intersection lifetime %v", i.Lifetime())
	}
	d, err := tgraph.Difference(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Lifetime() != tgraph.MustInterval(0, 4) {
		t.Errorf("difference lifetime %v", d.Lifetime())
	}
}

func TestPipelineTGAOperators(t *testing.T) {
	ctx := tgraph.NewContext()
	g := exampleGraph(ctx)
	other := tgraph.FromStates(ctx, []tgraph.VertexTuple{
		{ID: 3, Interval: tgraph.MustInterval(1, 9), Props: tgraph.NewProps("type", "person")},
	}, nil)

	p := tgraph.NewPipeline(g).
		Trim(tgraph.MustInterval(1, 8)).
		Subgraph(func(v tgraph.VertexTuple) bool { return v.Props.Type() == "person" }, nil).
		MapProps(func(v tgraph.VertexTuple) tgraph.Props {
			return v.Props.With("seen", tgraph.Bool(true))
		}, nil).
		Subtract(other)
	out, err := p.Result()
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 3 (Cat) was subtracted over its full extent.
	for _, v := range out.VertexStates() {
		if v.ID == 3 {
			t.Errorf("Cat should be subtracted: %v", v)
		}
		if v, _ := v.Props.Get("seen"); !mustBool(v) {
			t.Error("map step lost")
		}
	}
	if got := len(p.Steps()); got != 5 { // VE + 4 steps
		t.Errorf("steps = %v", p.Steps())
	}

	// Union through the pipeline restores Cat.
	restored, err := tgraph.NewPipeline(out).Union(other).Result()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range restored.VertexStates() {
		if v.ID == 3 {
			found = true
		}
	}
	if !found {
		t.Error("union did not restore Cat")
	}

	// Intersect with empty yields empty.
	empty := tgraph.FromStates(ctx, nil, nil)
	none, err := tgraph.NewPipeline(g).Intersect(empty).Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(none.VertexStates()) != 0 {
		t.Error("intersection with empty graph must be empty")
	}
}

func TestFacadeMergeEdges(t *testing.T) {
	ctx := tgraph.NewContext()
	g := exampleGraph(ctx)
	out, err := tgraph.NewPipeline(g).
		AZoom(tgraph.GroupByProperty("school", "school", tgraph.Count("students"))).
		MergeEdges("collaborate", tgraph.Count("pairs")).
		Result()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range out.EdgeStates() {
		if e.Props.Type() != "collaborate" || e.Props.GetInt("pairs") < 1 {
			t.Errorf("merged edge: %v", e.Props)
		}
	}
	if err := tgraph.Validate(out); err != nil {
		t.Errorf("invalid: %v", err)
	}
	if _, err := tgraph.MergeParallelEdges(g, "x", tgraph.Count("n")); err != nil {
		t.Errorf("direct call: %v", err)
	}
}

func mustBool(v tgraph.Value) bool {
	b, _ := v.AsBool()
	return b
}
