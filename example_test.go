package tgraph_test

import (
	"fmt"
	"sort"

	tgraph "repro"
	"repro/internal/core"
)

// figure1Graph builds the paper's running example TGraph (Figure 1).
func figure1Graph(ctx *tgraph.Context) tgraph.Graph {
	vs := []tgraph.VertexTuple{
		{ID: 1, Interval: tgraph.MustInterval(1, 7), Props: tgraph.NewProps("type", "person", "school", "MIT")},
		{ID: 2, Interval: tgraph.MustInterval(2, 5), Props: tgraph.NewProps("type", "person")},
		{ID: 2, Interval: tgraph.MustInterval(5, 9), Props: tgraph.NewProps("type", "person", "school", "CMU")},
		{ID: 3, Interval: tgraph.MustInterval(1, 9), Props: tgraph.NewProps("type", "person", "school", "MIT")},
	}
	es := []tgraph.EdgeTuple{
		{ID: 1, Src: 1, Dst: 2, Interval: tgraph.MustInterval(2, 7), Props: tgraph.NewProps("type", "co-author")},
		{ID: 2, Src: 2, Dst: 3, Interval: tgraph.MustInterval(7, 9), Props: tgraph.NewProps("type", "co-author")},
	}
	return tgraph.FromStates(ctx, vs, es)
}

// schoolSpec is the Figure 2 zoom with a deterministic Skolem function
// (MIT -> 100, CMU -> 200) so that example output is stable.
func schoolSpec() tgraph.AZoomSpec {
	ids := map[string]tgraph.VertexID{"MIT": 100, "CMU": 200}
	return tgraph.AZoomSpec{
		Skolem: func(_ tgraph.VertexID, p tgraph.Props) (tgraph.VertexID, bool) {
			id, ok := ids[p.GetString("school")]
			return id, ok
		},
		NewProps: func(_ tgraph.VertexID, p tgraph.Props) tgraph.Props {
			return tgraph.NewProps("type", "school", "name", p.GetString("school"))
		},
		Agg: core.GroupByProperty("school", "school", tgraph.Count("students")).Agg,
	}
}

func printVertices(g tgraph.Graph) {
	vs := g.VertexStates()
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].ID != vs[j].ID {
			return vs[i].ID < vs[j].ID
		}
		return vs[i].Interval.Before(vs[j].Interval)
	})
	for _, v := range vs {
		fmt.Printf("%d %v {%v}\n", v.ID, v.Interval, v.Props)
	}
}

// The paper's Figure 2: attribute-based zoom from people to schools.
func Example_attributeZoom() {
	ctx := tgraph.NewContext(tgraph.WithParallelism(2))
	g := figure1Graph(ctx)
	schools, err := tgraph.NewPipeline(g).AZoom(schoolSpec()).Result()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	printVertices(schools)
	// Output:
	// 100 [1, 7) {name=MIT, students=2, type=school}
	// 100 [7, 9) {name=MIT, students=1, type=school}
	// 200 [5, 9) {name=CMU, students=1, type=school}
}

// The paper's Figure 3: window-based zoom to quarters with universal
// quantification.
func Example_windowZoom() {
	ctx := tgraph.NewContext(tgraph.WithParallelism(2))
	g := figure1Graph(ctx)
	quarters, err := tgraph.NewPipeline(g).
		WZoom(tgraph.WZoomSpec{
			Window:   tgraph.EveryN(3),
			VQuant:   tgraph.All(),
			EQuant:   tgraph.All(),
			VResolve: tgraph.LastWins,
			EResolve: tgraph.LastWins,
		}).
		Result()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	printVertices(quarters)
	for _, e := range quarters.EdgeStates() {
		fmt.Printf("%d -> %d %v\n", e.Src, e.Dst, e.Interval)
	}
	// Output:
	// 1 [1, 7) {school=MIT, type=person}
	// 2 [4, 9) {school=CMU, type=person}
	// 3 [1, 9) {school=MIT, type=person}
	// 1 -> 2 [4, 7)
	// 2 -> 3 [7, 9)
}

// Quantifiers control how much evidence a window needs before an
// entity is kept.
func ExampleParseQuantifier() {
	for _, s := range []string{"all", "most", "at least 0.25", "exists"} {
		q, err := tgraph.ParseQuantifier(s)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Printf("%s: threshold %v\n", q, q.Threshold())
	}
	// Output:
	// all: threshold 1
	// most: threshold 0.5
	// at least 0.25: threshold 0.25
	// exists: threshold 0
}
