# Developer entry points. `make check` is the full gate CI should run:
# it builds every package, vets, runs the test suite (including the
# obs registry/tracer concurrency tests) under the race detector, and
# repeats the fault-injection chaos and crash-consistency suites.

GO ?= go

.PHONY: check build vet lint test test-race bench fmt bench-json chaos crash ingest-chaos smoke-serve smoke-scan smoke-overload smoke-incr smoke-shard

check: build vet lint test-race chaos crash ingest-chaos smoke-serve smoke-scan smoke-overload smoke-incr smoke-shard

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repository-specific static checks: forbids raw map[string]props.Value
# construction outside internal/props (see internal/lint).
lint:
	$(GO) run ./cmd/tgraph-lint .

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Fault-injection chaos suite: the TestChaos* tests drive the engine,
# zoom operators and storage under seeded injected failures (fixed
# seeds 11 and 23 inside the tests), twice each, under the race
# detector.
chaos:
	$(GO) test -race -count=2 -run Chaos ./...

# Crash-consistency suite: the TestCrash* tests crash SaveGraph at
# every atomic-write site (seeded faults.Crash rules) and truncate
# every committed file at every chunk boundary, asserting each
# directory loads as old data, a typed error, or a permissive partial —
# never a panic — under the race detector.
crash:
	$(GO) test -race -count=1 -run Crash ./...

# Ingestion chaos suite: the WAL crash matrix (injected crashes at
# every storage.wal.* durability point, torn batches, double crashes),
# torn-tail truncation at every byte boundary, the compaction crash
# matrix, concurrent append+scan, and the live serve-path crash /
# degraded-refusal tests — all under the race detector.
ingest-chaos:
	$(GO) test -race -count=1 -run 'TestCrashWAL|TestTornTail|TestMidLogCorruption|TestBatchedSyncDurability|TestConcurrentAppendScan' ./internal/storage/wal
	$(GO) test -race -count=1 -run 'TestCrashCompactMatrix|TestLoadWALCorruptionModes|TestVerifyAndRepairWALAndLitter' ./internal/storage
	$(GO) test -race -count=1 -run 'TestAppend' ./internal/serve

# Query-service smoke: N concurrent identical requests execute one
# zoom (singleflight, asserted via obs counters), hits are
# byte-identical to the cold run, and distinct queries cache
# independently.
smoke-serve:
	$(GO) test -race -count=1 -run 'TestConcurrentIdenticalRequestsDedup|TestWZoomSmokeAndByteIdenticalHit|TestDistinctQueriesCached' ./internal/serve

# Overload smoke: admission control sheds 4x saturation with bounded
# queueing and zero 5xx (TestChaosServeOverload), the reload breaker
# degrades to byte-identical stale serving and recovers
# (TestChaosReloadBreaker), then the overload bench runs at a small
# scale — it panics on any 5xx or on a missing degraded response.
smoke-overload:
	$(GO) test -race -count=1 -run 'TestChaosServeOverload|TestChaosReloadBreaker|TestAdmissionShed429' ./internal/serve
	$(GO) run ./cmd/tgraph-bench -exp overload -scale 0.25

# Parallel-scan smoke: the determinism suite proves byte-identical
# rows/stats at parallelism 1 vs N (with and without corruption), then
# the scan bench runs at a small scale — it panics if the parallel
# pass reads a different row count than the sequential one.
smoke-scan:
	$(GO) test -race -count=1 -run 'TestScanParallel' ./internal/storage
	$(GO) run ./cmd/tgraph-bench -exp scan -scale 0.05

# Incremental-maintenance smoke: the quick harness proves incremental
# aZoom/wZoom views byte-identical to from-scratch recomputation across
# representations, the serve patch path round-trips (append → patched
# cache entry → body identical to a cold recompute), then the incr
# bench runs at a small scale — it panics if a patched result diverges
# from the batch recompute.
smoke-incr:
	$(GO) test -race -count=1 -run 'TestQuickIncr' ./internal/incr
	$(GO) test -race -count=1 -run 'TestAppendPatchesViews|TestChangeWindowStaysOnInvalidatePath' ./internal/serve
	$(GO) run ./cmd/tgraph-bench -exp incr -scale 0.25

# Sharded-serving smoke: scatter-gather responses byte-identical to
# unsharded across shard counts, strategies and representations; a
# pre-split directory auto-detected and served with durable per-shard
# WAL appends; and a fault-injected shard worker degrading to a partial
# merge (or failing fast) under the race detector.
smoke-shard:
	$(GO) test -race -count=1 -run 'TestShardedByteIdentity|TestShardedDiskAppendDurability|TestShardedPartialDegraded' ./internal/serve
	$(GO) test -race -count=1 -run 'TestChaosPartialFailure|TestAZoomByteIdentity' ./internal/shard

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Regenerate the checked-in machine-readable benchmark results.
bench-json:
	$(GO) run ./cmd/tgraph-bench -exp all -json BENCH_all.json

fmt:
	gofmt -l -w .
