# Developer entry points. `make check` is the full gate CI should run:
# it builds every package, vets, and runs the test suite (including the
# obs registry/tracer concurrency tests) under the race detector.

GO ?= go

.PHONY: check build vet test test-race bench fmt bench-json

check: build vet test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Regenerate the checked-in machine-readable benchmark results.
bench-json:
	$(GO) run ./cmd/tgraph-bench -exp all -json BENCH_all.json

fmt:
	gofmt -l -w .
