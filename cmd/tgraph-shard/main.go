// Command tgraph-shard splits a saved TGraph directory into an
// N-shard directory that tgraph-serve detects (shards.json) and serves
// scatter-gather (see internal/shard). Each shard-NNN subdirectory is a
// complete storage layout — a base directory with the shard's mastered
// vertices and owned edges and a mirror directory with the full-state
// replicas of foreign edge endpoints — plus its own write-ahead log, so
// a sharded directory supports live appends exactly like a flat one.
//
// Usage:
//
//	tgraph-shard -in /data/snb -out /data/snb-4 -shards 4 [-strategy EdgePartition2D]
//
// Strategies: EdgePartition2D (default, grid vertex-cut),
// EdgePartition1D (source-hash), RandomVertexCut (edge-hash), TimeRange
// (whole states split by start time). Sharded query responses are
// byte-identical to serving the flat input.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/dataflow"
	"repro/internal/shard"
	"repro/internal/storage"
)

func main() {
	var (
		in       = flag.String("in", "", "input flat graph directory (as written by tgraph-import / storage.Save)")
		out      = flag.String("out", "", "output sharded directory (created; must not be a live serving directory)")
		shards   = flag.Int("shards", 4, "number of shards to split into (>= 1)")
		strategy = flag.String("strategy", "", "placement strategy: EdgePartition2D (default) | EdgePartition1D | RandomVertexCut | TimeRange")
		parallel = flag.Int("parallelism", 0, "dataflow/scan parallelism for the load (0 = NumCPU)")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "tgraph-shard: -in and -out are required")
		flag.Usage()
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "tgraph-shard: want -shards >= 1, got %d\n", *shards)
		os.Exit(2)
	}
	st, err := shard.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tgraph-shard: %v\n", err)
		os.Exit(2)
	}

	ctx := dataflow.NewContext(dataflow.WithParallelism(*parallel))
	defer ctx.Close()
	start := time.Now()
	g, _, err := storage.Load(ctx, *in, storage.LoadOptions{
		Scan: storage.ScanOptions{Parallelism: *parallel},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tgraph-shard: load %s: %v\n", *in, err)
		os.Exit(1)
	}
	vs, es := g.VertexStates(), g.EdgeStates()
	if err := shard.SaveDir(ctx, *out, vs, es, st, *shards, storage.SaveOptions{}); err != nil {
		fmt.Fprintf(os.Stderr, "tgraph-shard: %v\n", err)
		os.Exit(1)
	}
	m, err := shard.ReadManifest(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tgraph-shard: verify manifest: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("split %d vertex states, %d edge states into %d shards (%s) under %s in %v\n",
		len(vs), len(es), m.Shards, m.Strategy, *out, time.Since(start).Round(time.Millisecond))
	fmt.Printf("serve with: tgraph-serve -graph name=%s\n", *out)
}
