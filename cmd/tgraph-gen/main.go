// Command tgraph-gen generates a synthetic evolving graph dataset and
// persists it as a PGC graph directory (flat + nested columnar files).
//
// Usage:
//
//	tgraph-gen -kind wikitalk -out /tmp/wiki -users 5000 -snapshots 24
//	tgraph-gen -kind snb -out /tmp/snb -persons 2000 -snapshots 36
//	tgraph-gen -kind ngrams -out /tmp/ngrams -words 3000 -snapshots 32
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/datagen"
	"repro/internal/storage"
)

func main() {
	var (
		kind      = flag.String("kind", "wikitalk", "dataset kind: wikitalk | snb | ngrams")
		out       = flag.String("out", "", "output directory (required)")
		snapshots = flag.Int("snapshots", 24, "number of snapshots")
		users     = flag.Int("users", 2000, "wikitalk: number of users")
		events    = flag.Int("events", 1200, "wikitalk: messaging events per snapshot")
		persons   = flag.Int("persons", 1500, "snb: number of persons")
		friends   = flag.Int("friends", 14, "snb: mean friendships per person")
		words     = flag.Int("words", 1200, "ngrams: number of words")
		pairs     = flag.Int("pairs", 900, "ngrams: new co-occurrence pairs per snapshot")
		seed      = flag.Int64("seed", 42, "generator seed")
		order     = flag.String("order", "temporal", "flat-file sort order: temporal | structural")
		timeout   = flag.Duration("timeout", 0, "deadline for all dataflow work, e.g. 30s (0 = none)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tgraph-gen: -out is required")
		os.Exit(2)
	}

	var d datagen.Dataset
	switch *kind {
	case "wikitalk":
		d = datagen.WikiTalk(datagen.WikiTalkConfig{Users: *users, Snapshots: *snapshots, EventsPerSnapshot: *events, Seed: *seed})
	case "snb":
		d = datagen.SNB(datagen.SNBConfig{Persons: *persons, Snapshots: *snapshots, FriendshipsPerPerson: *friends, Seed: *seed})
	case "ngrams":
		d = datagen.NGrams(datagen.NGramsConfig{Words: *words, Snapshots: *snapshots, PairsPerSnapshot: *pairs, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "tgraph-gen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	var sortOrder storage.SortOrder
	switch *order {
	case "temporal":
		sortOrder = storage.SortTemporal
	case "structural":
		sortOrder = storage.SortStructural
	default:
		fmt.Fprintf(os.Stderr, "tgraph-gen: unknown sort order %q\n", *order)
		os.Exit(2)
	}

	var copts []dataflow.Option
	if *timeout > 0 {
		copts = append(copts, dataflow.WithTimeout(*timeout))
	}
	ctx := dataflow.NewContext(copts...)
	defer ctx.Close()
	g := core.NewVE(ctx, d.Vertices, d.Edges)
	if err := core.Validate(g); err != nil {
		fmt.Fprintf(os.Stderr, "tgraph-gen: generated graph invalid: %v\n", err)
		os.Exit(1)
	}
	if err := storage.SaveGraph(*out, g, storage.SaveOptions{FlatOrder: sortOrder}); err != nil {
		fmt.Fprintf(os.Stderr, "tgraph-gen: %v\n", err)
		os.Exit(1)
	}
	st := datagen.Describe(d)
	fmt.Printf("wrote %s to %s\n", st.Name, *out)
	fmt.Printf("  vertices=%d edges=%d states=%d snapshots=%d evolution-rate=%.1f%%\n",
		st.Vertices, st.Edges, st.States, st.Snapshots, st.EvRate)
}
