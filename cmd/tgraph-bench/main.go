// Command tgraph-bench regenerates the paper's evaluation tables and
// figures (Section 5) at laptop scale.
//
// Usage:
//
//	tgraph-bench -list
//	tgraph-bench -exp fig10 [-scale 1.0] [-parallelism 8] [-seed 42]
//	tgraph-bench -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp         = flag.String("exp", "", "experiment id (see -list), or \"all\"")
		list        = flag.Bool("list", false, "list available experiments")
		scale       = flag.Float64("scale", 1.0, "dataset size multiplier")
		parallelism = flag.Int("parallelism", 0, "worker pool size (0 = NumCPU)")
		seed        = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("Available experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-9s %s\n", e.ID, e.Title)
			fmt.Printf("            %s\n", e.Description)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := bench.Config{Scale: *scale, Parallelism: *parallelism, Seed: *seed}
	var run []bench.Experiment
	if *exp == "all" {
		run = bench.Experiments()
	} else {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "tgraph-bench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		run = []bench.Experiment{e}
	}
	for _, e := range run {
		fmt.Printf("# %s\n# %s\n", e.Title, e.Description)
		start := time.Now()
		for _, tb := range e.Run(cfg) {
			fmt.Println(tb.String())
		}
		fmt.Printf("# %s completed in %s\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
