// Command tgraph-bench regenerates the paper's evaluation tables and
// figures (Section 5) at laptop scale.
//
// Usage:
//
//	tgraph-bench -list
//	tgraph-bench -exp fig10 [-scale 1.0] [-parallelism 8] [-seed 42]
//	tgraph-bench -exp all
//	tgraph-bench -exp fig14 -json out.json
//	tgraph-bench -exp all -json BENCH_all.json
//
// With -json, every run also executes instrumented (tracing on, obs
// registry reset per experiment) and the results are written as a JSON
// array of {exp, config, rows, metrics, spans} records.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp         = flag.String("exp", "", "experiment id (see -list), or \"all\"")
		list        = flag.Bool("list", false, "list available experiments")
		scale       = flag.Float64("scale", 1.0, "dataset size multiplier")
		parallelism = flag.Int("parallelism", 0, "worker pool size (0 = NumCPU)")
		seed        = flag.Int64("seed", 42, "generator seed")
		jsonPath    = flag.String("json", "", "write machine-readable results to this file")
		timeout     = flag.Duration("timeout", 0, "per-experiment deadline for dataflow work, e.g. 2m (0 = none)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("Available experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-9s %s\n", e.ID, e.Title)
			fmt.Printf("            %s\n", e.Description)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := bench.Config{Scale: *scale, Parallelism: *parallelism, Seed: *seed, TimeoutMS: timeout.Milliseconds()}
	var run []bench.Experiment
	if *exp == "all" {
		run = bench.Experiments()
	} else {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "tgraph-bench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		run = []bench.Experiment{e}
	}
	var results []bench.RunResult
	for _, e := range run {
		fmt.Printf("# %s\n# %s\n", e.Title, e.Description)
		start := time.Now()
		tables, err := runExperiment(e, cfg, *jsonPath != "", &results)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tgraph-bench: experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, tb := range tables {
			fmt.Println(tb.String())
		}
		fmt.Printf("# %s completed in %s\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if *jsonPath != "" {
		if err := bench.WriteJSON(*jsonPath, results); err != nil {
			fmt.Fprintf(os.Stderr, "tgraph-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("# wrote %d result(s) to %s\n", len(results), *jsonPath)
	}
}

// runExperiment executes one experiment, converting the panic(err) an
// experiment body raises on a failed or deadline-exceeded zoom into a
// clean error instead of a crash.
func runExperiment(e bench.Experiment, cfg bench.Config, instrumented bool, results *[]bench.RunResult) (tables []bench.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			if rerr, ok := r.(error); ok {
				err = rerr
				return
			}
			panic(r)
		}
	}()
	if instrumented {
		res := bench.RunInstrumented(e, cfg)
		*results = append(*results, res)
		return res.Rows, nil
	}
	return e.Run(cfg), nil
}
