package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/obs"
	"repro/internal/props"
	"repro/internal/serve"
	"repro/internal/storage"
	"repro/internal/temporal"
)

func TestGraphFlagParsing(t *testing.T) {
	var g graphFlags
	if err := g.Set("snb=/data/snb"); err != nil {
		t.Fatal(err)
	}
	if err := g.Set("fig1=/data/fig1@og"); err != nil {
		t.Fatal(err)
	}
	if len(g) != 2 || g[1].Rep != "og" || g[0].Dir != "/data/snb" {
		t.Errorf("parsed flags = %+v", g)
	}
	for _, bad := range []string{"", "noeq", "=dir", "name="} {
		if err := g.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

// drainExit returns non-zero while a request is still in flight past
// the deadline, and zero once the server is idle.
func TestDrainTimeoutExitCode(t *testing.T) {
	dir := t.TempDir()
	ctx := dataflow.NewContext(dataflow.WithParallelism(2))
	g := core.NewVE(ctx, []core.VertexTuple{
		{ID: 1, Interval: temporal.MustInterval(1, 5), Props: props.New("type", "person")},
	}, nil)
	if err := storage.SaveGraph(dir, g, storage.SaveOptions{}); err != nil {
		t.Fatal(err)
	}

	block := make(chan struct{})
	s, err := serve.New(serve.Config{
		Graphs: []serve.GraphConfig{{Name: "g", Dir: dir}},
		FaultHook: func(site string) error {
			if site == "serve.handler" {
				<-block
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(serve.WZoomRequest{Graph: "g", Window: "2 units"})
	reqDone := make(chan struct{})
	go func() {
		defer close(reqDone)
		r := httptest.NewRequest("POST", "/v1/wzoom", bytes.NewReader(body))
		s.Handler().ServeHTTP(httptest.NewRecorder(), r)
	}()
	inflight := obs.Default().Gauge("serve.inflight")
	deadline := time.Now().Add(2 * time.Second)
	for inflight.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	if code := drainExit(s, 20*time.Millisecond); code != 1 {
		t.Errorf("drainExit with a stuck request = %d, want 1", code)
	}
	close(block)
	<-reqDone
	if code := drainExit(s, 2*time.Second); code != 0 {
		t.Errorf("drainExit after completion = %d, want 0", code)
	}
}
