// Command tgraph-serve exposes saved TGraph directories as a
// concurrent zoom query service (see internal/serve): JSON aZoom^T /
// wZoom^T / pipeline endpoints with a fingerprinted result cache,
// singleflight deduplication, per-request timeouts, admission control
// with bounded queueing, circuit-broken graph reloads with degraded
// (stale-graph) fallback, and graceful drain.
//
// Usage:
//
//	tgraph-serve -graph snb=/data/snb -graph fig1=/data/fig1@og \
//	    -addr :8080 -cache-mb 64 -timeout 30s \
//	    -max-inflight 64 -queue-depth 128 -breaker-threshold 3 \
//	    -drain-timeout 30s
//
// Each -graph names one served directory as name=dir or name=dir@rep
// (rep one of ve|rg|og|ogc, default ve). POST /v1/append ingests live
// deltas through each directory's write-ahead log (-wal-sync picks the
// fsync policy; acks are sent only after durability) and invalidates
// cached results surgically by declared time range; -compact-after
// folds the log into a fresh columnar epoch inline. -shards N splits
// each flat graph across N in-process shard workers at load time and
// serves queries scatter-gather (byte-identical to unsharded);
// directories pre-split with tgraph-shard are detected automatically
// and served from their per-shard storage and WALs. On SIGINT/SIGTERM
// the server stops accepting connections and drains in-flight
// requests; if they outlive -drain-timeout the process exits non-zero
// so supervisors see the unclean shutdown.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

// graphFlags collects repeated -graph name=dir[@rep] values.
type graphFlags []serve.GraphConfig

func (g *graphFlags) String() string {
	parts := make([]string, len(*g))
	for i, gc := range *g {
		parts[i] = gc.Name + "=" + gc.Dir
	}
	return strings.Join(parts, ",")
}

func (g *graphFlags) Set(v string) error {
	name, rest, ok := strings.Cut(v, "=")
	if !ok || name == "" || rest == "" {
		return fmt.Errorf("want name=dir[@rep], got %q", v)
	}
	dir, rep, _ := strings.Cut(rest, "@")
	if dir == "" {
		return fmt.Errorf("want name=dir[@rep], got %q", v)
	}
	*g = append(*g, serve.GraphConfig{Name: name, Dir: dir, Rep: rep})
	return nil
}

// drainExit drains the server within timeout and returns the process
// exit code: 0 for a clean drain, 1 when in-flight requests outlived
// the deadline.
func drainExit(s *serve.Server, timeout time.Duration) int {
	if err := s.DrainWithin(timeout); err != nil {
		log.Printf("tgraph-serve: %v", err)
		return 1
	}
	log.Print("tgraph-serve: drained, bye")
	return 0
}

func main() {
	var graphs graphFlags
	addr := flag.String("addr", ":8080", "listen address")
	cacheMB := flag.Int64("cache-mb", 64, "result cache budget in MiB (0 disables residency)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request computation timeout (0 for none)")
	parallelism := flag.Int("parallelism", 0, "per-request dataflow parallelism (0 = NumCPU)")
	scanParallelism := flag.Int("scan-parallelism", 0, "storage scan decode workers per file when loading graphs (0 = GOMAXPROCS, 1 = sequential)")
	maxInflight := flag.Int("max-inflight", 64, "admission control: max concurrently executing query requests (0 disables shedding)")
	queueDepth := flag.Int("queue-depth", 128, "admission control: bounded FIFO wait queue behind -max-inflight (0 = shed immediately when full)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive reload failures that trip a graph's circuit breaker into degraded stale serving")
	breakerCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "how long a tripped reload breaker stays open before probing the directory again")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown; exceeded = non-zero exit")
	walSync := flag.String("wal-sync", "each", "append durability: WAL fsync policy, each (fsync before every ack) | batched (group commit)")
	walSyncDelay := flag.Duration("wal-sync-delay", 0, "batched mode: max latency an append may wait for its group fsync (0 = WAL default)")
	compactAfter := flag.Int("compact-after", 0, "fold the WAL into a new columnar epoch after this many appended records (0 disables inline compaction)")
	shards := flag.Int("shards", 0, "split each flat graph into this many in-process shards at load time and serve scatter-gather (<= 1 serves unsharded; directories pre-split by tgraph-shard are always served sharded)")
	shardStrategy := flag.String("shard-strategy", "", "vertex-cut placement for -shards: EdgePartition2D (default) | EdgePartition1D | RandomVertexCut | TimeRange")
	shardPartial := flag.Bool("shard-partial", false, "answer 200 with the surviving shards' merge (X-TGraph-Shards: k/n) when some shards fail, instead of failing the request")
	flag.Var(&graphs, "graph", "graph to serve as name=dir[@rep]; repeatable")
	flag.Parse()

	if len(graphs) == 0 {
		fmt.Fprintln(os.Stderr, "tgraph-serve: at least one -graph name=dir is required")
		flag.Usage()
		os.Exit(2)
	}

	s, err := serve.New(serve.Config{
		Graphs:           graphs,
		CacheBytes:       *cacheMB << 20,
		Timeout:          *timeout,
		Parallelism:      *parallelism,
		ScanParallelism:  *scanParallelism,
		MaxInflight:      *maxInflight,
		QueueDepth:       *queueDepth,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		WALSyncMode:      *walSync,
		WALMaxSyncDelay:  *walSyncDelay,
		CompactAfter:     *compactAfter,
		Shards:           *shards,
		ShardStrategy:    *shardStrategy,
		ShardPartial:     *shardPartial,
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("tgraph-serve: listening on %s, serving %s", *addr, graphs.String())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("tgraph-serve: %v, draining", sig)
	}

	// Stop accepting connections, then wait for in-flight queries up to
	// the drain deadline.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("tgraph-serve: shutdown: %v", err)
	}
	os.Exit(drainExit(s, *drainTimeout))
}
