// Command tgraph-import converts a CSV graph directory (vertices.csv +
// optional edges.csv, VE schema) into a PGC columnar graph directory
// that the GraphLoader can read with predicate pushdown.
//
// Usage:
//
//	tgraph-import -in ./mydata -out /tmp/mygraph [-order structural] [-validate]
package main

import (
	"flag"
	"fmt"
	"os"

	tgraph "repro"
	"repro/internal/storage"
)

func main() {
	var (
		in       = flag.String("in", "", "input directory with vertices.csv (+ edges.csv)")
		out      = flag.String("out", "", "output PGC graph directory")
		order    = flag.String("order", "temporal", "flat-file sort order: temporal | structural")
		validate = flag.Bool("validate", true, "check TGraph validity before writing")
		timeout  = flag.Duration("timeout", 0, "deadline for all dataflow work, e.g. 30s (0 = none)")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "tgraph-import: -in and -out are required")
		os.Exit(2)
	}
	var sortOrder storage.SortOrder
	switch *order {
	case "temporal":
		sortOrder = storage.SortTemporal
	case "structural":
		sortOrder = storage.SortStructural
	default:
		fmt.Fprintf(os.Stderr, "tgraph-import: unknown sort order %q\n", *order)
		os.Exit(2)
	}

	var copts []tgraph.Option
	if *timeout > 0 {
		copts = append(copts, tgraph.WithTimeout(*timeout))
	}
	ctx := tgraph.NewContext(copts...)
	defer ctx.Close()
	g, err := tgraph.ImportCSV(ctx, *in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tgraph-import: %v\n", err)
		os.Exit(1)
	}
	if *validate {
		if err := tgraph.Validate(g); err != nil {
			fmt.Fprintf(os.Stderr, "tgraph-import: input is not a valid TGraph:\n%v\n", err)
			os.Exit(1)
		}
	}
	if err := tgraph.Save(*out, g, tgraph.SaveOptions{FlatOrder: sortOrder}); err != nil {
		fmt.Fprintf(os.Stderr, "tgraph-import: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("imported %d vertices, %d edges (lifetime %v) into %s\n",
		g.NumVertices(), g.NumEdges(), g.Lifetime(), *out)
}
