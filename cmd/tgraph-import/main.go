// Command tgraph-import converts a CSV graph directory (vertices.csv +
// optional edges.csv, VE schema) into a PGC columnar graph directory
// that the GraphLoader can read with predicate pushdown.
//
// With -append it instead streams the CSV rows into the write-ahead
// log of an EXISTING graph directory — row by row, batched fsyncs,
// nothing held in memory — so large deltas can be ingested without
// rebuilding the graph; the next load replays them and tgraph-cli
// -compact folds them into a new columnar epoch. The WAL is
// single-writer: never -append into a directory a live tgraph-serve is
// serving (use its POST /v1/append instead).
//
// Usage:
//
//	tgraph-import -in ./mydata -out /tmp/mygraph [-order structural] [-validate]
//	tgraph-import -in ./delta -out /tmp/mygraph -append [-batch 512] [-wal-sync batched]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	tgraph "repro"
	"repro/internal/storage"
)

func main() {
	var (
		in       = flag.String("in", "", "input directory with vertices.csv (+ edges.csv)")
		out      = flag.String("out", "", "output PGC graph directory")
		order    = flag.String("order", "temporal", "flat-file sort order: temporal | structural")
		validate = flag.Bool("validate", true, "check TGraph validity before writing")
		timeout  = flag.Duration("timeout", 0, "deadline for all dataflow work, e.g. 30s (0 = none)")
		doAppend = flag.Bool("append", false, "stream the CSV into the write-ahead log of the EXISTING graph directory -out instead of building a new one")
		batch    = flag.Int("batch", 512, "append mode: records per durable WAL append")
		walSync  = flag.String("wal-sync", "each", "append mode: WAL fsync policy, each | batched")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "tgraph-import: -in and -out are required")
		os.Exit(2)
	}
	if *doAppend {
		mode, err := tgraph.ParseWALSyncMode(*walSync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tgraph-import: %v\n", err)
			os.Exit(2)
		}
		start := time.Now()
		st, err := tgraph.AppendCSV(*out, *in, *batch, tgraph.WALOptions{Mode: mode})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tgraph-import: append: %v (%d records already durable)\n", err, st.Records)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		rate := float64(st.Records) / elapsed.Seconds()
		if st.Records == 0 {
			fmt.Printf("appended 0 records to the WAL of %s (input was empty)\n", *out)
			return
		}
		fmt.Printf("appended %d records to the WAL of %s in %v (%.0f records/s, acked seq %d..%d)\n",
			st.Records, *out, elapsed.Round(time.Millisecond), rate, st.FirstSeq, st.LastSeq)
		fmt.Printf("compact with: tgraph-cli -dir %s -compact\n", *out)
		return
	}
	var sortOrder storage.SortOrder
	switch *order {
	case "temporal":
		sortOrder = storage.SortTemporal
	case "structural":
		sortOrder = storage.SortStructural
	default:
		fmt.Fprintf(os.Stderr, "tgraph-import: unknown sort order %q\n", *order)
		os.Exit(2)
	}

	var copts []tgraph.Option
	if *timeout > 0 {
		copts = append(copts, tgraph.WithTimeout(*timeout))
	}
	ctx := tgraph.NewContext(copts...)
	defer ctx.Close()
	g, err := tgraph.ImportCSV(ctx, *in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tgraph-import: %v\n", err)
		os.Exit(1)
	}
	if *validate {
		if err := tgraph.Validate(g); err != nil {
			fmt.Fprintf(os.Stderr, "tgraph-import: input is not a valid TGraph:\n%v\n", err)
			os.Exit(1)
		}
	}
	if err := tgraph.Save(*out, g, tgraph.SaveOptions{FlatOrder: sortOrder}); err != nil {
		fmt.Fprintf(os.Stderr, "tgraph-import: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("imported %d vertices, %d edges (lifetime %v) into %s\n",
		g.NumVertices(), g.NumEdges(), g.Lifetime(), *out)
}
