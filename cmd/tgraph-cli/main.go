// Command tgraph-cli loads a persisted TGraph, optionally applies a
// zoom pipeline, and prints the result.
//
// Usage:
//
//	tgraph-cli -dir /tmp/wiki -rep og -info
//	tgraph-cli -dir /tmp/wiki -rep ve -stats
//	tgraph-cli -dir /tmp/wiki -rep ve -azoom name -count members
//	tgraph-cli -dir /tmp/snb -rep og -wzoom "6 months" -vquant all -equant all
//	tgraph-cli -dir /tmp/snb -rep ve -azoom firstName -wzoom "3 months" -dump 10
//	tgraph-cli -dir /tmp/snb -rep og -wzoom "6 months" -trace
//	tgraph-cli -dir /tmp/snb -rep og -wzoom "6 months" -timeout 30s
//	tgraph-cli -dir /tmp/damaged -rep ve -permissive -info
//	tgraph-cli -dir /tmp/damaged -verify
//	tgraph-cli -dir /tmp/damaged -repair
//	tgraph-cli -dir /tmp/wiki -compact
//
// -verify also inspects the directory's write-ahead log segments and
// reports unexpected litter; -repair heals the log (truncating torn
// tails), retires fully-subsumed segments, and quarantines litter into
// quarantine/ instead of deleting it. -compact folds the WAL tail into
// a fresh committed columnar epoch and retires its segments — run it
// only while no server is serving the directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	tgraph "repro"
	"repro/internal/core"
	"repro/internal/obs"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tgraph-cli: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		dir        = flag.String("dir", "", "graph directory (required)")
		rep        = flag.String("rep", "ve", "representation: ve | rg | og | ogc")
		from       = flag.Int64("from", 0, "load range start (0 and 0 = everything)")
		to         = flag.Int64("to", 0, "load range end")
		info       = flag.Bool("info", false, "print graph statistics and exit")
		keyStats   = flag.Bool("stats", false, "print the property key-dictionary summary (distinct keys, per-key cardinality and value types) plus the WAL segment/pending-record summary, and exit")
		azoom      = flag.String("azoom", "", "aZoom^T: group vertices by this property")
		count      = flag.String("count", "", "aZoom^T: add a count aggregate under this label")
		wzoom      = flag.String("wzoom", "", "wZoom^T window spec, e.g. \"3 months\" or \"2 changes\"")
		vquant     = flag.String("vquant", "exists", "wZoom^T vertex quantifier")
		equant     = flag.String("equant", "exists", "wZoom^T edge quantifier")
		dump       = flag.Int("dump", 0, "print up to N vertex and edge states of the result")
		explain    = flag.Bool("explain", false, "print the cost-based plan for the requested zooms instead of executing eagerly")
		trace      = flag.Bool("trace", false, "record per-stage spans and print the span tree after execution")
		timeout    = flag.Duration("timeout", 0, "deadline for all dataflow work, e.g. 30s (0 = none)")
		permissive = flag.Bool("permissive", false, "skip corrupt chunks while loading instead of aborting")
		scanPar    = flag.Int("scan-parallelism", 0, "storage scan decode workers per file (0 = GOMAXPROCS, 1 = sequential)")
		verify     = flag.Bool("verify", false, "check MANIFEST, file CRCs, every chunk CRC and the WAL segments, print a damage report, and exit (status 1 if damaged)")
		repair     = flag.Bool("repair", false, "remove aborted-save litter, heal the WAL, retire subsumed segments and quarantine unexpected files, then exit")
		compact    = flag.Bool("compact", false, "fold the write-ahead log tail into a fresh committed epoch and retire its segments, then exit (offline only: the directory must not be served)")
	)
	flag.Parse()
	if *dir == "" {
		fail("-dir is required")
	}
	if *compact {
		var copts []tgraph.Option
		if *timeout > 0 {
			copts = append(copts, tgraph.WithTimeout(*timeout))
		}
		ctx := tgraph.NewContext(copts...)
		defer ctx.Close()
		res, err := tgraph.Compact(ctx, *dir, nil, tgraph.SaveOptions{})
		if err != nil {
			fail("compact: %v", err)
		}
		fmt.Printf("compacted %s: folded %d WAL record(s) through seq %d, retired %d segment(s)\n",
			*dir, res.Folded, res.WALSeq, res.SegmentsRetired)
		return
	}
	if *repair {
		removed, err := tgraph.RepairDir(*dir)
		if err != nil {
			fail("repair: %v", err)
		}
		if len(removed) == 0 {
			fmt.Println("nothing to repair")
		}
		for _, name := range removed {
			fmt.Printf("removed %s\n", name)
		}
		if !*verify {
			return
		}
	}
	if *verify {
		rep, err := tgraph.VerifyDir(*dir)
		if err != nil {
			fail("verify: %v", err)
		}
		fmt.Print(rep)
		if !rep.Clean {
			os.Exit(1)
		}
		return
	}
	if *trace {
		obs.SetTracing(true)
	}

	reps := map[string]tgraph.Representation{"ve": tgraph.VE, "rg": tgraph.RG, "og": tgraph.OG, "ogc": tgraph.OGC}
	r, ok := reps[*rep]
	if !ok {
		fail("unknown representation %q", *rep)
	}

	var copts []tgraph.Option
	if *timeout > 0 {
		copts = append(copts, tgraph.WithTimeout(*timeout))
	}
	ctx := tgraph.NewContext(copts...)
	defer ctx.Close()
	var rng tgraph.Interval
	if *to > *from {
		rng = tgraph.MustInterval(tgraph.Time(*from), tgraph.Time(*to))
	}
	g, stats, err := tgraph.Load(ctx, *dir, tgraph.LoadOptions{
		Rep: r, Range: rng, Permissive: *permissive,
		Scan: tgraph.ScanOptions{Parallelism: *scanPar},
	})
	if err != nil {
		fail("load: %v", err)
	}
	fmt.Printf("loaded %s: %d vertices, %d edges, lifetime %v (chunks read %d, skipped %d)\n",
		g.Rep(), g.NumVertices(), g.NumEdges(), g.Lifetime(), stats.ChunksRead, stats.ChunksSkipped)
	if stats.ChunksCorrupt > 0 || stats.RowsCorrupt > 0 {
		fmt.Fprintf(os.Stderr, "tgraph-cli: warning: permissive load skipped %d corrupt chunk(s) and dropped %d corrupt row(s); results are partial\n",
			stats.ChunksCorrupt, stats.RowsCorrupt)
	}

	if *info {
		printInfo(g)
		return
	}

	if *keyStats {
		printKeyStats(g)
		printWALStats(*dir)
		return
	}

	if *explain {
		q := tgraph.NewQuery(g)
		if *azoom != "" {
			var aggs []tgraph.AggField
			if *count != "" {
				aggs = append(aggs, tgraph.Count(*count))
			}
			q = q.AZoom(tgraph.GroupByProperty(*azoom, *azoom+"-group", aggs...))
		}
		if *wzoom != "" {
			w, err := tgraph.ParseWindowSpec(*wzoom)
			if err != nil {
				fail("%v", err)
			}
			q = q.WZoom(tgraph.WZoomSpec{Window: w})
		}
		plan, err := q.Explain()
		if err != nil {
			fail("%v", err)
		}
		fmt.Println("plan:", plan)
		return
	}

	p := tgraph.NewPipeline(g)
	if *azoom != "" {
		var aggs []tgraph.AggField
		if *count != "" {
			aggs = append(aggs, tgraph.Count(*count))
		}
		p = p.AZoom(tgraph.GroupByProperty(*azoom, *azoom+"-group", aggs...))
	}
	if *wzoom != "" {
		w, err := tgraph.ParseWindowSpec(*wzoom)
		if err != nil {
			fail("%v", err)
		}
		vq, err := tgraph.ParseQuantifier(*vquant)
		if err != nil {
			fail("%v", err)
		}
		eq, err := tgraph.ParseQuantifier(*equant)
		if err != nil {
			fail("%v", err)
		}
		p = p.WZoom(tgraph.WZoomSpec{
			Window: w, VQuant: vq, EQuant: eq,
			VResolve: tgraph.LastWins, EResolve: tgraph.LastWins,
		})
	}
	out, err := p.Result()
	if err != nil {
		fail("pipeline: %v", err)
	}
	fmt.Printf("pipeline %v -> %d vertices, %d edges, lifetime %v\n",
		p.Steps(), out.NumVertices(), out.NumEdges(), out.Lifetime())
	if *dump > 0 {
		dumpStates(out, *dump)
	}
	if *trace {
		fmt.Print("trace:\n", obs.FormatSpans(obs.Spans()))
	}
}

func printInfo(g tgraph.Graph) {
	vs := g.VertexStates()
	es := g.EdgeStates()
	fmt.Printf("  vertex states: %d\n  edge states:   %d\n", len(vs), len(es))
	types := map[string]int{}
	for _, v := range vs {
		types[v.Props.Type()]++
	}
	keys := make([]string, 0, len(types))
	for k := range types {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  vertex type %q: %d states\n", k, types[k])
	}
	if rg, ok := g.(*core.RG); ok {
		fmt.Printf("  snapshots: %d\n", rg.NumSnapshots())
	}
}

// printWALStats renders the write-ahead-log side of -stats: the
// segment inventory and how many durable records the committed
// manifest has not yet subsumed (those replay on every load until the
// next compaction folds them in).
func printWALStats(dir string) {
	infos, err := tgraph.InspectWAL(dir)
	if err != nil {
		fail("wal inspect: %v", err)
	}
	if len(infos) == 0 {
		fmt.Println("wal: no segments")
		return
	}
	var bytes int64
	records, damaged := 0, 0
	for _, s := range infos {
		bytes += s.Bytes
		records += s.Records
		if s.Status != "ok" {
			damaged++
		}
	}
	fmt.Printf("wal: %d segment(s), %d bytes, %d record(s)", len(infos), bytes, records)
	if damaged > 0 {
		fmt.Printf(", %d segment(s) damaged (run -verify)", damaged)
	}
	fmt.Println()
	sub, err := tgraph.SubsumedWALSeq(dir)
	if err != nil {
		fail("wal stats: read manifest: %v", err)
	}
	rr, err := tgraph.ReadWAL(dir, sub, true)
	if err != nil {
		fail("wal stats: read log: %v", err)
	}
	if len(rr.Deltas) == 0 {
		fmt.Printf("wal: manifest subsumes every record (through seq %d); nothing pending\n", sub)
		return
	}
	fmt.Printf("wal: %d pending record(s) past the manifest (seq %d..%d) — folded at the next compaction\n",
		len(rr.Deltas), sub+1, rr.LastSeq)
}

// printKeyStats renders the per-graph key-dictionary summary: every
// property label the graph's states carry, with how many states use
// it, the distinct-value cardinality, and the value kinds observed.
func printKeyStats(g tgraph.Graph) {
	type keyStat struct {
		states int
		values map[string]struct{}
		kinds  map[tgraph.Kind]struct{}
	}
	byKey := map[tgraph.Key]*keyStat{}
	collect := func(p tgraph.Props) {
		p.Range(func(k tgraph.Key, v tgraph.Value) bool {
			st := byKey[k]
			if st == nil {
				st = &keyStat{values: map[string]struct{}{}, kinds: map[tgraph.Kind]struct{}{}}
				byKey[k] = st
			}
			st.states++
			kind, payload := v.Encode()
			st.values[fmt.Sprintf("%d\x00%s", kind, payload)] = struct{}{}
			st.kinds[v.Kind()] = struct{}{}
			return true
		})
	}
	for _, v := range g.VertexStates() {
		collect(v.Props)
	}
	for _, e := range g.EdgeStates() {
		collect(e.Props)
	}
	labels := make([]string, 0, len(byKey))
	stats := make(map[string]*keyStat, len(byKey))
	for k, st := range byKey {
		labels = append(labels, k.Name())
		stats[k.Name()] = st
	}
	sort.Strings(labels)
	fmt.Printf("key dictionary: %d distinct keys in graph, %d labels interned process-wide\n",
		len(labels), tgraph.DictSize())
	for _, label := range labels {
		st := stats[label]
		kinds := make([]string, 0, len(st.kinds))
		for k := range st.kinds {
			kinds = append(kinds, k.String())
		}
		sort.Strings(kinds)
		fmt.Printf("  %-16s %8d states  %8d distinct values  kinds %v\n",
			label, st.states, len(st.values), kinds)
	}
}

func dumpStates(g tgraph.Graph, n int) {
	vs := g.VertexStates()
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].ID != vs[j].ID {
			return vs[i].ID < vs[j].ID
		}
		return vs[i].Interval.Before(vs[j].Interval)
	})
	fmt.Println("vertices:")
	for i, v := range vs {
		if i >= n {
			fmt.Printf("  ... and %d more\n", len(vs)-n)
			break
		}
		fmt.Printf("  %d %v {%v}\n", v.ID, v.Interval, v.Props)
	}
	es := g.EdgeStates()
	sort.Slice(es, func(i, j int) bool {
		if es[i].ID != es[j].ID {
			return es[i].ID < es[j].ID
		}
		return es[i].Interval.Before(es[j].Interval)
	})
	fmt.Println("edges:")
	for i, e := range es {
		if i >= n {
			fmt.Printf("  ... and %d more\n", len(es)-n)
			break
		}
		fmt.Printf("  %d: %d -> %d %v {%v}\n", e.ID, e.Src, e.Dst, e.Interval, e.Props)
	}
}
