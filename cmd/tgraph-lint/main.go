// Command tgraph-lint runs the repository's custom static checks (see
// internal/lint): it fails when any package outside internal/props
// constructs a raw map[string]props.Value (the pattern the interned
// Props runtime replaced), or when an exported symbol in a
// doc-coverage-enforced package (internal/storage) lacks a godoc
// comment. Usage:
//
//	tgraph-lint [dir]
//
// dir defaults to the current directory. Violations are printed one
// per line in file:line:col format and the exit status is 1.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	flag.Parse()
	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	diags, err := lint.CheckDir(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tgraph-lint: %v\n", err)
		os.Exit(2)
	}
	docDiags, err := lint.CheckDocs(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tgraph-lint: %v\n", err)
		os.Exit(2)
	}
	diags = append(diags, docDiags...)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tgraph-lint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}
