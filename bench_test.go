// Benchmarks regenerating the paper's evaluation, one per table/figure.
// Each benchmark sweeps the same parameters as the corresponding
// experiment in internal/bench (which cmd/tgraph-bench runs with
// table-formatted output); these testing.B wrappers integrate with
// `go test -bench`. Graph construction happens outside the timed
// region; the timed region is the zoom operator itself.
package tgraph_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	tgraph "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/props"
	"repro/internal/storage"
	"repro/internal/temporal"
)

// benchCfg keeps `go test -bench=.` runnable in minutes.
var benchCfg = bench.Config{Scale: 0.15, Parallelism: 4, Seed: 42}

func buildRep(b *testing.B, d datagen.Dataset, rep core.Representation) core.TGraph {
	b.Helper()
	ctx := tgraph.NewContext(tgraph.WithParallelism(4))
	ve := core.NewVE(ctx, d.Vertices, d.Edges)
	g, err := core.Convert(ve.Coalesce(), rep)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

var azoomRepsUnderTest = []core.Representation{core.RepRG, core.RepVE, core.RepOG}
var wzoomRepsUnderTest = []core.Representation{core.RepRG, core.RepVE, core.RepOG, core.RepOGC}

// BenchmarkTable1DatasetStats regenerates the dataset-statistics table.
func BenchmarkTable1DatasetStats(b *testing.B) {
	for _, gen := range []struct {
		name string
		mk   func() datagen.Dataset
	}{
		{"WikiTalk", func() datagen.Dataset { return bench.WikiTalkDataset(benchCfg, 24) }},
		{"SNB", func() datagen.Dataset { return bench.SNBDataset(benchCfg, 36) }},
		{"NGrams", func() datagen.Dataset { return bench.NGramsDataset(benchCfg, 32) }},
	} {
		b.Run(gen.name, func(b *testing.B) {
			d := gen.mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := datagen.Describe(d)
				if st.Vertices == 0 {
					b.Fatal("empty dataset")
				}
			}
		})
	}
}

// BenchmarkFig10AZoomDataSize: aZoom^T vs data size per representation.
func BenchmarkFig10AZoomDataSize(b *testing.B) {
	full := bench.SNBDataset(benchCfg, 36)
	for _, cut := range []temporal.Time{12, 24, 36} {
		d := datagen.Slice(full, cut)
		spec := core.GroupByProperty("firstName", "name-group")
		for _, rep := range azoomRepsUnderTest {
			b.Run(fmt.Sprintf("SNB/cut=%d/%s", cut, rep), func(b *testing.B) {
				g := buildRep(b, d, rep)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := g.AZoom(spec); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig11AZoomSnapshots: aZoom^T vs number of snapshots at fixed
// size.
func BenchmarkFig11AZoomSnapshots(b *testing.B) {
	full := bench.WikiTalkDataset(benchCfg, 32)
	spec := core.GroupByProperty("name", "user-group")
	for _, factor := range []temporal.Time{8, 2, 1} {
		d := datagen.MergeSnapshots(full, factor)
		snaps := datagen.Describe(d).Snapshots
		for _, rep := range azoomRepsUnderTest {
			b.Run(fmt.Sprintf("WikiTalk/snapshots=%d/%s", snaps, rep), func(b *testing.B) {
				g := buildRep(b, d, rep)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := g.AZoom(spec); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig12AZoomCardinality: aZoom^T vs group-by cardinality.
func BenchmarkFig12AZoomCardinality(b *testing.B) {
	full := bench.SNBDataset(benchCfg, 36)
	spec := core.GroupByProperty("grp", "group")
	for _, card := range []int{10, 1000, 100000} {
		d := datagen.AssignRandomGroups(full, card, 42)
		for _, rep := range azoomRepsUnderTest {
			b.Run(fmt.Sprintf("SNB/card=%d/%s", card, rep), func(b *testing.B) {
				g := buildRep(b, d, rep)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := g.AZoom(spec); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig13AZoomChangeFreq: aZoom^T vs frequency of attribute
// change.
func BenchmarkFig13AZoomChangeFreq(b *testing.B) {
	full := bench.SNBDataset(benchCfg, 36)
	spec := core.GroupByProperty("firstName", "name-group")
	for _, period := range []temporal.Time{0, 6, 1} {
		d := full
		if period > 0 {
			d = datagen.ChurnVertexAttributes(full, period)
		}
		for _, rep := range azoomRepsUnderTest {
			b.Run(fmt.Sprintf("SNB/period=%d/%s", period, rep), func(b *testing.B) {
				g := buildRep(b, d, rep)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := g.AZoom(spec); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func wzoomSpec(window temporal.Time, q temporal.Quantifier) core.WZoomSpec {
	return core.WZoomSpec{Window: temporal.MustEveryN(window), VQuant: q, EQuant: q}
}

// BenchmarkFig14WZoomDataSize: wZoom^T vs data size (exists/exists).
func BenchmarkFig14WZoomDataSize(b *testing.B) {
	full := bench.WikiTalkDataset(benchCfg, 24)
	for _, cut := range []temporal.Time{12, 24} {
		d := datagen.Slice(full, cut)
		for _, rep := range wzoomRepsUnderTest {
			b.Run(fmt.Sprintf("WikiTalk/cut=%d/%s", cut, rep), func(b *testing.B) {
				g := buildRep(b, d, rep)
				spec := wzoomSpec(3, temporal.Exists())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := g.WZoom(spec); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig15WZoomWindowSize: wZoom^T vs window size (all/all).
func BenchmarkFig15WZoomWindowSize(b *testing.B) {
	d := bench.SNBDataset(benchCfg, 36)
	for _, w := range []temporal.Time{2, 6, 12} {
		for _, rep := range wzoomRepsUnderTest {
			b.Run(fmt.Sprintf("SNB/window=%d/%s", w, rep), func(b *testing.B) {
				g := buildRep(b, d, rep)
				spec := wzoomSpec(w, temporal.All())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := g.WZoom(spec); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig16Chaining: aZoom -> (switch) -> wZoom strategies.
func BenchmarkFig16Chaining(b *testing.B) {
	d := bench.SNBDataset(benchCfg, 36)
	az := core.GroupByProperty("firstName", "name-group")
	wz := wzoomSpec(6, temporal.All())
	strategies := []struct {
		name       string
		rep1, rep2 core.Representation
	}{
		{"OG", core.RepOG, core.RepOG},
		{"VE", core.RepVE, core.RepVE},
		{"OG-VE", core.RepOG, core.RepVE},
		{"VE-OG", core.RepVE, core.RepOG},
	}
	for _, s := range strategies {
		b.Run("SNB/"+s.name, func(b *testing.B) {
			g := buildRep(b, d, s.rep1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mid, err := g.AZoom(az)
				if err != nil {
					b.Fatal(err)
				}
				if s.rep2 != s.rep1 {
					if mid, err = core.Convert(mid, s.rep2); err != nil {
						b.Fatal(err)
					}
				}
				res, err := mid.WZoom(wz)
				if err != nil {
					b.Fatal(err)
				}
				res.Coalesce()
			}
		})
	}
}

// BenchmarkFig17ZoomOrder: aZoom-then-wZoom vs wZoom-then-aZoom.
func BenchmarkFig17ZoomOrder(b *testing.B) {
	full := bench.NGramsDataset(benchCfg, 32)
	az := core.GroupByProperty("grp", "group")
	wz := wzoomSpec(8, temporal.Exists())
	for _, card := range []int{10, 100000} {
		d := datagen.AssignRandomGroups(full, card, 42)
		b.Run(fmt.Sprintf("NGrams/card=%d/az-wz", card), func(b *testing.B) {
			g := buildRep(b, d, core.RepOG)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mid, err := g.AZoom(az)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := mid.WZoom(wz); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("NGrams/card=%d/wz-az", card), func(b *testing.B) {
			g := buildRep(b, d, core.RepOG)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mid, err := g.WZoom(wz)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := mid.AZoom(az); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLoadSortOrder: the Section 4 loading ablation — time-range
// loads against structurally vs temporally sorted files.
func BenchmarkLoadSortOrder(b *testing.B) {
	d := bench.WikiTalkDataset(benchCfg, 24)
	ctx := tgraph.NewContext()
	g := core.NewVE(ctx, d.Vertices, d.Edges)
	rng := temporal.MustInterval(0, 6)
	for _, order := range []storage.SortOrder{storage.SortStructural, storage.SortTemporal} {
		dir := b.TempDir()
		if err := storage.SaveGraph(dir, g, storage.SaveOptions{FlatOrder: order, ChunkRows: 512}); err != nil {
			b.Fatal(err)
		}
		b.Run(order.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := storage.Load(ctx, dir, storage.LoadOptions{Rep: core.RepVE, Range: rng}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLazyCoalescing: lazy vs eager coalescing in an operator
// chain (Section 4 ablation).
func BenchmarkLazyCoalescing(b *testing.B) {
	d := datagen.ChurnVertexAttributes(bench.SNBDataset(benchCfg, 36), 6)
	az1 := core.GroupByProperty("firstName", "name-group", props.Count("n"))
	az2 := core.GroupByProperty("name", "letter-group", props.Sum("total", "n"))
	wz := wzoomSpec(6, temporal.Exists())
	// The chain is aZoom -> aZoom -> wZoom over a churned (fragmented)
	// input: aZoom tolerates uncoalesced input, so lazy mode coalesces
	// only where wZoom demands it, while eager mode coalesces after
	// every operator. On fragmented intermediates eager coalescing can
	// win (it shrinks what VE's joins must process); the harness
	// experiment `coalesce` measures both this and the compact regime
	// where eager is a redundant pass.
	for _, rep := range []core.Representation{core.RepVE, core.RepOG} {
		for _, mode := range []string{"lazy", "eager"} {
			b.Run(fmt.Sprintf("SNB/%s/%s", rep, mode), func(b *testing.B) {
				g := buildRep(b, d, rep)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mid, err := g.AZoom(az1)
					if err != nil {
						b.Fatal(err)
					}
					if mode == "eager" {
						mid = mid.Coalesce()
					}
					mid2, err := mid.AZoom(az2)
					if err != nil {
						b.Fatal(err)
					}
					if mode == "eager" {
						mid2 = mid2.Coalesce()
					}
					res, err := mid2.WZoom(wz)
					if err != nil {
						b.Fatal(err)
					}
					res.Coalesce()
				}
			})
		}
	}
}

// allocReps are the representations the allocation benchmarks cover:
// the two the paper recommends for zoom workloads.
var allocReps = []core.Representation{core.RepVE, core.RepOG}

// BenchmarkAZoomAlloc measures allocations per aZoom^T over VE and OG.
// The interned property runtime is judged by these numbers (see
// ISSUE 4 / DESIGN.md "Property runtime").
func BenchmarkAZoomAlloc(b *testing.B) {
	d := bench.WikiTalkDataset(benchCfg, 24)
	spec := core.GroupByProperty("name", "user-group", props.Count("members"))
	for _, rep := range allocReps {
		b.Run(fmt.Sprintf("WikiTalk/%s", rep), func(b *testing.B) {
			g := buildRep(b, d, rep)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.AZoom(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWZoomAlloc measures allocations per wZoom^T over VE and OG.
func BenchmarkWZoomAlloc(b *testing.B) {
	d := bench.WikiTalkDataset(benchCfg, 24)
	spec := core.WZoomSpec{
		Window: temporal.MustEveryN(3),
		VQuant: temporal.Exists(), EQuant: temporal.Exists(),
		VResolve: props.LastWins, EResolve: props.LastWins,
	}
	for _, rep := range allocReps {
		b.Run(fmt.Sprintf("WikiTalk/%s", rep), func(b *testing.B) {
			g := buildRep(b, d, rep)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.WZoom(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestInstrumentationOverhead guards the cost of the observability
// layer: with tracing enabled, a fig14-sized wZoom run must stay within
// 5% of the untraced run. A/B runs are interleaved so frequency scaling
// and scheduler noise hit both sides equally, medians absorb outliers,
// and the whole comparison retries a few times before failing so one
// noisy round does not flake CI.
func TestInstrumentationOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short mode")
	}
	d := bench.WikiTalkDataset(benchCfg, 24)
	ctx := tgraph.NewContext(tgraph.WithParallelism(4))
	ve := core.NewVE(ctx, d.Vertices, d.Edges)
	g, err := core.Convert(ve.Coalesce(), core.RepOG)
	if err != nil {
		t.Fatal(err)
	}
	spec := core.WZoomSpec{
		Window: temporal.MustEveryN(3),
		VQuant: temporal.Exists(), EQuant: temporal.Exists(),
		VResolve: props.LastWins, EResolve: props.LastWins,
	}
	run := func() {
		if _, err := g.WZoom(spec); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		obs.SetTracing(false)
		obs.ResetAll()
	}()
	run() // warm up caches and the allocator before timing

	median := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}
	const rounds = 7
	for attempt := 1; ; attempt++ {
		off := make([]time.Duration, 0, rounds)
		on := make([]time.Duration, 0, rounds)
		for i := 0; i < rounds; i++ {
			obs.SetTracing(false)
			start := time.Now()
			run()
			off = append(off, time.Since(start))

			obs.ResetAll() // keep the span forest from growing across rounds
			obs.SetTracing(true)
			start = time.Now()
			run()
			on = append(on, time.Since(start))
		}
		mOff, mOn := median(off), median(on)
		overhead := float64(mOn-mOff) / float64(mOff)
		t.Logf("attempt %d: untraced %v, traced %v, overhead %+.2f%%", attempt, mOff, mOn, overhead*100)
		if overhead < 0.05 {
			return
		}
		if attempt == 4 {
			t.Errorf("instrumentation overhead %.2f%% exceeds 5%% (untraced %v, traced %v)",
				overhead*100, mOff, mOn)
			return
		}
	}
}
