package tgraph

import "repro/internal/datagen"

// Synthetic dataset generators modelling the paper's evaluation
// workloads (Section 5, Datasets), re-exported from internal/datagen.

// Dataset is a generated evolving graph.
type Dataset = datagen.Dataset

// Generator configurations.
type (
	// WikiTalkConfig parameterises the WikiTalk-like generator
	// (growth-only users, month-lived message edges, ~14% evolution
	// rate).
	WikiTalkConfig = datagen.WikiTalkConfig
	// SNBConfig parameterises the LDBC-SNB-like generator (growth-only
	// friendship network, ~90% evolution rate).
	SNBConfig = datagen.SNBConfig
	// NGramsConfig parameterises the NGrams-like generator (persistent
	// words, co-occurrence edges with geometric lifespans, ~17%
	// evolution rate).
	NGramsConfig = datagen.NGramsConfig
	// DatasetStats is the dataset-statistics row of the paper's Table 1.
	DatasetStats = datagen.Stats
)

// GenerateWikiTalk builds the WikiTalk-like messaging workload.
func GenerateWikiTalk(cfg WikiTalkConfig) Dataset { return datagen.WikiTalk(cfg) }

// GenerateSNB builds the SNB-like friendship workload.
func GenerateSNB(cfg SNBConfig) Dataset { return datagen.SNB(cfg) }

// GenerateNGrams builds the NGrams-like co-occurrence workload.
func GenerateNGrams(cfg NGramsConfig) Dataset { return datagen.NGrams(cfg) }

// DescribeDataset computes Table 1 statistics (entity counts,
// snapshots, evolution rate as average edit similarity).
func DescribeDataset(d Dataset) DatasetStats { return datagen.Describe(d) }

// GraphOf wraps a generated dataset as a VE TGraph.
func GraphOf(ctx *Context, d Dataset) Graph { return FromStates(ctx, d.Vertices, d.Edges) }
