package tgraph

import (
	"repro/internal/core"
	"repro/internal/props"
)

// Companion TGA operators (trim, subgraph, map, union, intersection,
// difference), re-exported from the core and wired into Pipeline. All
// operate under point semantics and preserve the input's physical
// representation.

// Trim restricts the graph to the window, clipping every state.
func Trim(g Graph, window Interval) (Graph, error) { return core.Trim(g, window) }

// Subgraph keeps the vertex and edge states satisfying the predicates
// (nil keeps everything), clipping edges to the surviving presence of
// their endpoints.
func Subgraph(g Graph, vPred func(VertexTuple) bool, ePred func(EdgeTuple) bool) (Graph, error) {
	return core.Subgraph(g, vPred, ePred)
}

// MapProps transforms the property sets of vertex and edge states (nil
// leaves the relation unchanged).
func MapProps(g Graph, vf func(VertexTuple) Props, ef func(EdgeTuple) Props) (Graph, error) {
	return core.MapProps(g, vf, ef)
}

// Union computes the point-wise union of two TGraphs sharing an
// identifier space; the left graph's properties win on conflicts.
func Union(a, b Graph) (Graph, error) { return core.Union(a, b) }

// Intersection keeps entities at the points where they exist in both
// graphs, with the left graph's properties.
func Intersection(a, b Graph) (Graph, error) { return core.Intersection(a, b) }

// Difference keeps left-graph entities at the points where they do not
// exist in the right graph, clipping edges that lose endpoints.
func Difference(a, b Graph) (Graph, error) { return core.Difference(a, b) }

// Trim restricts the pipeline's graph to a window.
func (p *Pipeline) Trim(window Interval) *Pipeline {
	return p.apply("trim", func(g Graph) (Graph, error) { return core.Trim(g, window) })
}

// Subgraph filters the pipeline's graph by state predicates.
func (p *Pipeline) Subgraph(vPred func(VertexTuple) bool, ePred func(EdgeTuple) bool) *Pipeline {
	return p.apply("subgraph", func(g Graph) (Graph, error) { return core.Subgraph(g, vPred, ePred) })
}

// MapProps transforms the pipeline's graph's properties.
func (p *Pipeline) MapProps(vf func(VertexTuple) props.Props, ef func(EdgeTuple) props.Props) *Pipeline {
	return p.apply("map", func(g Graph) (Graph, error) { return core.MapProps(g, vf, ef) })
}

// Union merges another graph into the pipeline's graph (left wins).
func (p *Pipeline) Union(other Graph) *Pipeline {
	return p.apply("union", func(g Graph) (Graph, error) { return core.Union(g, other) })
}

// Intersect keeps the points shared with another graph.
func (p *Pipeline) Intersect(other Graph) *Pipeline {
	return p.apply("intersect", func(g Graph) (Graph, error) { return core.Intersection(g, other) })
}

// Subtract removes the points present in another graph.
func (p *Pipeline) Subtract(other Graph) *Pipeline {
	return p.apply("difference", func(g Graph) (Graph, error) { return core.Difference(g, other) })
}

// MergeParallelEdges collapses parallel edges between the same vertex
// pair into single weighted edges per time point, with newType as the
// merged type ("" keeps the original) and agg computing the merged
// properties (e.g. Count, Sum). The natural finishing step after AZoom.
func MergeParallelEdges(g Graph, newType string, agg ...AggField) (Graph, error) {
	return core.MergeParallelEdges(g, newType, props.AggSpec{Fields: agg})
}

// MergeEdges collapses parallel edges in the pipeline's graph.
func (p *Pipeline) MergeEdges(newType string, agg ...AggField) *Pipeline {
	return p.apply("mergeEdges", func(g Graph) (Graph, error) {
		return core.MergeParallelEdges(g, newType, props.AggSpec{Fields: agg})
	})
}
